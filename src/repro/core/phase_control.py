"""Phase-aware dI/dt control (extension).

`examples/phase_analysis.py` shows that a benchmark's emergency exposure
concentrates in a subset of its phases.  This controller exploits that:
it classifies the recent current history online with the wavelet phase
classifier and runs a *tight* control margin only inside the risky
phases, relaxing to a loose margin elsewhere — fewer spurious
interventions than always-tight control, better coverage than
always-loose.

The classifier is trained offline (on a profiling run, like the paper's
offline characterization); the online part re-classifies once per
256-cycle window from a rolling history, costing one small DWT every
window rather than per cycle.
"""

from __future__ import annotations

import numpy as np

from ..power import PowerSupplyNetwork
from .characterization import WINDOW
from .controller import ThresholdController
from .phases import WaveletPhaseClassifier

__all__ = ["PhaseAwareController"]


class PhaseAwareController:
    """Switch control margins by detected execution phase.

    Parameters
    ----------
    monitor:
        Voltage monitor (``observe(current) -> volts``).
    network:
        Supply model (fault band).
    classifier:
        A *fitted* :class:`~repro.core.phases.WaveletPhaseClassifier`.
    risky_phases:
        Phase ids that get the tight margin (e.g. chosen offline as the
        phases with the highest emergency probability).
    tight / loose:
        Margins (volts) used inside / outside risky phases.
    noop_rate:
        No-ops per cycle while boosting.
    """

    def __init__(
        self,
        monitor,
        network: PowerSupplyNetwork,
        classifier: WaveletPhaseClassifier,
        risky_phases: set[int],
        tight: float = 0.020,
        loose: float = 0.006,
        noop_rate: int = 4,
    ) -> None:
        if classifier.labels_ is None:
            raise ValueError("classifier must be fitted before control")
        if tight < loose:
            raise ValueError("tight margin must be >= loose margin")
        bad = {p for p in risky_phases if not 0 <= p < classifier.phases}
        if bad:
            raise ValueError(f"unknown phase ids: {sorted(bad)}")
        self.network = network
        self.classifier = classifier
        self.risky_phases = set(risky_phases)
        self.noop_rate = noop_rate
        self._tight = ThresholdController(monitor, network, tight, noop_rate)
        # Share the same monitor instance: one observation per cycle.
        self._loose = ThresholdController(
            _SharedEstimate(self._tight), network, loose, noop_rate
        )
        self._history = np.zeros(WINDOW)
        self._filled = 0
        self._armed = True  # conservative until the first classification
        self._armed_cycles = 0
        self.cycles = 0
        self.classifications = 0

    @property
    def stall_decisions(self) -> int:
        """Total stall interventions across both margin regimes."""
        return self._tight.stall_decisions + self._loose.stall_decisions

    @property
    def boost_decisions(self) -> int:
        """Total no-op interventions across both margin regimes."""
        return self._tight.boost_decisions + self._loose.boost_decisions

    @property
    def v_low_control(self) -> float:
        """Currently-armed low control point (for false-positive scoring)."""
        active = self._tight if self._armed else self._loose
        return active.v_low_control

    @property
    def v_high_control(self) -> float:
        """Currently-armed high control point."""
        active = self._tight if self._armed else self._loose
        return active.v_high_control

    @property
    def armed_fraction(self) -> float:
        """Share of cycles spent under the tight margin."""
        if self.cycles == 0:
            return 0.0
        return self._armed_cycles / self.cycles

    def update(self, current: float) -> tuple[bool, int]:
        """One control step with phase-dependent margins."""
        self.cycles += 1
        self._history[:-1] = self._history[1:]
        self._history[-1] = current
        self._filled = min(self._filled + 1, WINDOW)
        if self._filled == WINDOW and self.cycles % WINDOW == 0:
            phase = self.classifier.classify(self._history)
            self._armed = phase in self.risky_phases
            self.classifications += 1
        if self._armed:
            self._armed_cycles += 1
            decision = self._tight.update(current)
            self._loose.cycles += 1  # keep rates comparable
            return decision
        # The loose controller reuses the tight one's monitor estimate.
        return self._loose.update(current)


class _SharedEstimate:
    """Adapter: reuse the last estimate of another controller's monitor."""

    def __init__(self, primary: ThresholdController) -> None:
        self._primary = primary

    def observe(self, current: float) -> float:
        return self._primary.monitor.observe(current)

"""Calibration of per-scale voltage-variance factors (§4.1, steps 3-4).

The offline estimator needs, for every wavelet scale, a *multiplicative
factor* turning that scale's current variance into the voltage variance it
contributes — with the adjacent-coefficient correlation as a second input,
because correlated coefficient runs form pulse trains that build resonance
in the supply network.  The paper derives these factors from "a series of
experiments"; we do the same, executably: drive the supply model with
scale-pure synthetic signals of controlled adjacent correlation, measure
the output voltage variance, and tabulate the ratio.

The factors depend only on the supply network (not on any workload), so
they are computed once per network and cached.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..power import ConvolutionVoltageSimulator, PowerSupplyNetwork
from ..wavelets import WaveletDecomposition

__all__ = ["ScaleFactorModel", "calibrate_scale_factors"]

#: Adjacent-correlation grid on which factors are tabulated.
_RHO_GRID = np.array([-0.98, -0.9, -0.7, -0.4, 0.0, 0.4, 0.7, 0.9, 0.98])


def _ar1_sequence(n: int, rho: float, rng: np.random.Generator) -> np.ndarray:
    """Unit-variance AR(1) sequence with lag-1 correlation ``rho``."""
    noise_scale = np.sqrt(max(1.0 - rho * rho, 1e-12))
    out = np.empty(n)
    out[0] = rng.normal()
    for k in range(1, n):
        out[k] = rho * out[k - 1] + noise_scale * rng.normal()
    return out


def _scale_pure_signal(
    length: int, level: int, rho: float, rng: np.random.Generator
) -> np.ndarray:
    """A signal whose energy lives entirely in one Haar detail scale.

    Constructed by planting an AR(1) coefficient sequence at the chosen
    level of an otherwise-zero decomposition and inverting.
    """
    levels = int(np.log2(length))
    approx = np.zeros(1)
    details = [np.zeros(length >> lvl) for lvl in range(1, levels + 1)]
    details[level - 1] = _ar1_sequence(length >> level, rho, rng)
    return WaveletDecomposition(approx, details, "haar").reconstruct()


@dataclass(frozen=True)
class ScaleFactorModel:
    """Tabulated voltage-variance factors ``G_j(rho)`` for one network.

    ``factor(level, rho)`` linearly interpolates over the calibration
    grid; outside the grid the edge value is used (correlations beyond
    ±0.9 are indistinguishable from pulse trains at calibration accuracy).
    """

    network: PowerSupplyNetwork
    levels: tuple[int, ...]
    rho_grid: tuple[float, ...]
    table: dict[int, tuple[float, ...]]

    def factor(self, level: int, rho: float = 0.0) -> float:
        """Voltage-variance factor for one scale at one correlation."""
        if level not in self.table:
            raise KeyError(f"level {level} was not calibrated")
        return float(np.interp(rho, self.rho_grid, self.table[level]))

    def factor_array(self, level: int, rhos: np.ndarray) -> np.ndarray:
        """:meth:`factor` for a whole vector of correlations at once.

        Element ``k`` equals ``factor(level, rhos[k])`` exactly — the
        same ``np.interp`` over the same grid — so the batched §4.1
        path reproduces the per-window path bit for bit.
        """
        if level not in self.table:
            raise KeyError(f"level {level} was not calibrated")
        return np.interp(
            np.asarray(rhos, dtype=float), self.rho_grid, self.table[level]
        )

    def peak_level(self) -> int:
        """The scale the supply amplifies the most (at rho = 0)."""
        return max(self.levels, key=lambda lvl: self.factor(lvl, 0.0))

    def ranked_levels(self, rho: float = 0.0) -> list[int]:
        """Scales ordered by decreasing voltage impact.

        The Figure-8 experiment keeps only the top few of these.
        """
        return sorted(self.levels, key=lambda lvl: -self.factor(lvl, rho))


_CACHE: dict[tuple, ScaleFactorModel] = {}


def calibrate_scale_factors(
    network: PowerSupplyNetwork,
    levels: int = 8,
    signal_length: int = 16384,
    trials: int = 4,
    seed: int = 2004,
) -> ScaleFactorModel:
    """Run the calibration experiments for one supply network.

    For every (level, rho) cell: synthesize ``trials`` scale-pure current
    signals, push them through the supply model, and record the ratio of
    settled voltage variance to the signal's wavelet-scale variance.
    Linearity of the network makes the ratio amplitude-independent.
    """
    key = (
        round(network.resonant_hz),
        round(network.quality_factor, 6),
        network.peak_impedance,
        network.impedance_scale,
        network.clock_hz,
        levels,
        signal_length,
        trials,
        seed,
    )
    if key in _CACHE:
        return _CACHE[key]

    if signal_length & (signal_length - 1):
        raise ValueError("signal_length must be a power of two")
    if levels < 1 or (1 << levels) > signal_length:
        raise ValueError("too many levels for the signal length")

    rng = np.random.default_rng(seed)
    sim = ConvolutionVoltageSimulator(network)
    settle = min(sim.taps, signal_length // 4)
    table: dict[int, tuple[float, ...]] = {}
    for level in range(1, levels + 1):
        row = []
        for rho in _RHO_GRID:
            ratios = []
            for _ in range(trials):
                current = _scale_pure_signal(signal_length, level, rho, rng)
                droop = sim.droop(current)[settle:]
                var_i = float(np.sum(current**2)) / signal_length
                if var_i <= 0:
                    continue
                ratios.append(float(droop.var()) / var_i)
            row.append(float(np.mean(ratios)))
        table[level] = tuple(row)
    model = ScaleFactorModel(
        network=network,
        levels=tuple(range(1, levels + 1)),
        rho_grid=tuple(_RHO_GRID),
        table=table,
    )
    _CACHE[key] = model
    return model

"""Workload-level statistical analyses (§4.1's observations and §4.3).

Everything Figures 6, 7, 10, 11 and 12 plot: Gaussian-window acceptance
rates for per-cycle current, the variance split between Gaussian and
non-Gaussian windows, voltage histograms, and the relationship between
L2 misses and Gaussianity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..power import ConvolutionVoltageSimulator, PowerSupplyNetwork
from ..stats import (
    VoltageHistogram,
    WindowStudy,
    study_windows,
    voltage_histogram,
)
from ..uarch import SimulationResult, simulate_benchmark

__all__ = [
    "BenchmarkGaussianity",
    "gaussianity_study",
    "benchmark_voltage_histogram",
    "L2MissReport",
    "l2_miss_report",
]


@dataclass(frozen=True)
class BenchmarkGaussianity:
    """χ²-test results for one benchmark at several window sizes."""

    name: str
    studies: dict[int, WindowStudy]  # window size -> study

    def acceptance_rate(self, window: int) -> float:
        """Fraction of windows accepted as Gaussian at this size."""
        return self.studies[window].acceptance_rate


def gaussianity_study(
    result: SimulationResult,
    windows: tuple[int, ...] = (32, 64, 128),
    samples_per_size: int = 200,
    seed: int = 7,
) -> BenchmarkGaussianity:
    """Random-window Gaussianity classification of a current trace.

    Reproduces the §4.1 experiment: windows "chosen at random intervals
    throughout the execution", χ² test at 95 % significance.
    """
    rng = np.random.default_rng(seed)
    studies = {
        w: study_windows(result.current, w, samples_per_size, rng)
        for w in windows
    }
    return BenchmarkGaussianity(name=result.name, studies=studies)


def benchmark_voltage_histogram(
    network: PowerSupplyNetwork,
    result: SimulationResult,
    bins: int = 60,
) -> VoltageHistogram:
    """Voltage distribution of a benchmark (Figures 10/11)."""
    sim = ConvolutionVoltageSimulator(network)
    voltage = sim.voltage(result.current)[min(sim.taps, result.cycles // 4):]
    return voltage_histogram(voltage, bins=bins)


@dataclass(frozen=True)
class L2MissReport:
    """The §4.3 correlation: L2 misses vs. voltage shape.

    ``spike_ratio`` measures how much probability mass piles up at the
    nominal voltage (Figure 11's signature of memory-bound codes);
    ``gaussian_rate`` is the 64-cycle χ² acceptance of the current trace
    (Figure 12).
    """

    name: str
    l2_mpki: float
    l2_outstanding_fraction: float
    gaussian_rate: float
    spike_ratio: float


def l2_miss_report(
    network: PowerSupplyNetwork,
    benchmark: str,
    cycles: int = 32768,
    seed: int = 7,
) -> L2MissReport:
    """Assemble the §4.3 evidence for one benchmark."""
    result = simulate_benchmark(benchmark, cycles=cycles)
    gauss = gaussianity_study(result, windows=(64,), seed=seed)
    hist = benchmark_voltage_histogram(network, result)
    return L2MissReport(
        name=benchmark,
        l2_mpki=result.stats.l2_mpki,
        l2_outstanding_fraction=float(result.l2_outstanding.mean()),
        gaussian_rate=gauss.acceptance_rate(64),
        spike_ratio=hist.spike_ratio(network.vdd, 0.004),
    )

"""Offline wavelet-variance voltage characterization (§4.1-4.2).

The paper's five-step method, executably:

1. DWT a 256-cycle current window (Haar, 8 levels).
2. Per-scale wavelet variance via Parseval.
3. Adjacent-coefficient correlation per scale (pulse-pattern detector).
4. Voltage-variance contribution per scale = calibrated multiplicative
   factor (a function of the correlation) times the scale's variance.
5. Gaussian model with mean = Vdd − IR drop and the summed variance gives
   the probability of crossing any voltage control point.

Aggregating window probabilities over a whole trace predicts the fraction
of cycles a benchmark spends below the 0.97 V control point — Figure 9's
estimate, checked against the convolution-simulated truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kernels import get_kernel
from ..obs import trace as obs
from ..power import ConvolutionVoltageSimulator, PowerSupplyNetwork
from ..stats import GaussianModel
from ..wavelets import (
    adjacent_correlation,
    decompose,
)
from .calibration import ScaleFactorModel, calibrate_scale_factors

__all__ = [
    "WindowCharacterization",
    "WaveletVoltageEstimator",
    "TracePrediction",
    "predict_trace",
]

WINDOW = 256  # the paper's characterization window (§4.1 step 1)


def _levels_for_window(window: int) -> int:
    """Full decomposition depth of a power-of-two window."""
    if window < 4 or window & (window - 1):
        raise ValueError("window must be a power of two >= 4")
    return window.bit_length() - 1


@dataclass(frozen=True)
class WindowCharacterization:
    """The §4.1 outputs for one 256-cycle window."""

    mean_current: float
    scale_variances: dict[int, float]
    scale_correlations: dict[int, float]
    voltage_model: GaussianModel

    def prob_below(self, threshold: float) -> float:
        """Probability a cycle in this window sits below ``threshold``."""
        return self.voltage_model.prob_below(threshold)

    def prob_above(self, threshold: float) -> float:
        """Probability a cycle in this window sits above ``threshold``."""
        return self.voltage_model.prob_above(threshold)


class WaveletVoltageEstimator:
    """The offline estimator for one supply network.

    Parameters
    ----------
    network:
        Supply model (must match the one used to simulate "truth").
    levels:
        Decomposition depth; must fully decompose the window.
    keep_levels:
        If given, only these scales contribute variance — the Figure-8
        level-truncation experiment.  ``None`` uses all scales.
    window:
        Characterization window in cycles (power of two).  The paper uses
        256 "because it could capture current variations on the range of
        tens to hundreds of cycles"; the window-size ablation sweeps this.
    """

    def __init__(
        self,
        network: PowerSupplyNetwork,
        levels: int | None = None,
        keep_levels: set[int] | None = None,
        factors: ScaleFactorModel | None = None,
        window: int = WINDOW,
    ) -> None:
        self.window = window
        full_depth = _levels_for_window(window)
        if levels is None:
            levels = full_depth
        if levels != full_depth:
            raise ValueError(
                f"levels must fully decompose the {window}-cycle window "
                f"({full_depth})"
            )
        self.network = network
        self.levels = levels
        self.factors = factors or calibrate_scale_factors(network, levels)
        if keep_levels is not None:
            bad = [lvl for lvl in keep_levels if not 1 <= lvl <= levels]
            if bad:
                raise ValueError(f"keep_levels out of range: {bad}")
        self.keep_levels = keep_levels

    def top_levels(self, count: int) -> set[int]:
        """The ``count`` scales with the largest voltage impact.

        §4.1: "voltage variance on different wavelet decomposition levels
        often differs by orders of magnitude", so a handful of levels
        carries nearly all of it.
        """
        return set(self.factors.ranked_levels()[:count])

    # -- batched window evaluation (the kernel-dispatch hot path) ---------------

    def tile_windows(self, current: np.ndarray) -> np.ndarray:
        """The trace as a ``(count, window)`` matrix of full windows.

        Non-overlapping tiling with the trailing partial window dropped
        — the same convention every whole-trace method (and the
        streaming aggregators) use.  Raises if no full window fits.
        """
        i = np.asarray(current, dtype=float)
        count = len(i) // self.window
        if count == 0:
            raise ValueError(
                f"trace shorter than one {self.window}-cycle window"
            )
        return i[: count * self.window].reshape(count, self.window)

    def _window_stats(self, windows: np.ndarray):
        """Steps 1-3 for a ``(W, window)`` matrix via the active kernel."""
        return get_kernel("window_stats")(
            np.asarray(windows, dtype=float), self.levels
        )

    def voltage_params_from(self, stats) -> tuple[np.ndarray, np.ndarray]:
        """Per-window Gaussian (mean, variance) from batched statistics.

        Pure elementwise NumPy on a :class:`~repro.kernels.WindowStats`
        — backend-independent, which is what lets every
        ``characterize_block`` backend share it.
        """
        v_var = np.zeros(stats.windows)
        for lvl in range(1, self.levels + 1):
            if self.keep_levels is not None and lvl not in self.keep_levels:
                continue
            v_var += (
                self.factors.factor_array(lvl, stats.correlations[lvl - 1])
                * stats.variances[lvl - 1]
            )
        mean_v = self.network.vdd - stats.means * self.network.dc_resistance
        return mean_v, v_var

    def contribution_terms_from(self, stats) -> np.ndarray:
        """Per-(level, window) voltage-variance terms from batched stats."""
        terms = np.empty((self.levels, stats.windows))
        for lvl in range(1, self.levels + 1):
            terms[lvl - 1] = (
                self.factors.factor_array(lvl, stats.correlations[lvl - 1])
                * stats.variances[lvl - 1]
            )
        return terms

    def window_voltage_params(
        self, windows: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Gaussian-model (mean, variance) for every window row (§4.1 1-4).

        One ``window_stats`` kernel call covers steps 1-3 for all rows;
        the calibrated factors then turn per-scale current variance into
        voltage variance, honouring ``keep_levels``.  Row ``k`` matches
        :meth:`characterize_window` on ``windows[k]`` to float round-off
        (exactly, on the reference backend).
        """
        return self.voltage_params_from(self._window_stats(windows))

    def window_probs_below(
        self, windows: np.ndarray, threshold: float
    ) -> np.ndarray:
        """Per-window probability of sitting below ``threshold`` (step 5)."""
        mean_v, v_var = self.window_voltage_params(windows)
        return get_kernel("gaussian_prob_below")(mean_v, v_var, threshold)

    def window_contribution_terms(self, windows: np.ndarray) -> np.ndarray:
        """Per-(level, window) voltage-variance terms, shape ``(levels, W)``.

        ``terms[j - 1, k]`` is level ``j``'s contribution in window
        ``k`` — the quantity :meth:`level_contributions` averages.
        """
        return self.contribution_terms_from(self._window_stats(windows))

    def characterize_windows(
        self, windows: np.ndarray, threshold: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Probabilities and contribution terms from one shared stats pass.

        What the ``characterize`` pipeline stage wants: both outputs of
        the §4.1 analysis without decomposing every window twice.
        Results are bit-identical to calling :meth:`window_probs_below`
        and :meth:`window_contribution_terms` separately.
        """
        stats = self._window_stats(windows)
        mean_v, v_var = self.voltage_params_from(stats)
        probs = get_kernel("gaussian_prob_below")(mean_v, v_var, threshold)
        return probs, self.contribution_terms_from(stats)

    def level_contributions(self, current: np.ndarray) -> dict[int, float]:
        """Mean per-level voltage-variance contribution over a trace.

        The basis for level truncation: §4.1 ignores "those wavelet
        levels that have small impact while estimating voltage variance".
        """
        windows = self.tile_windows(current)
        count = windows.shape[0]
        with obs.span(
            "characterize.level_contributions", windows=count
        ):
            terms = self.window_contribution_terms(windows)
        totals = terms.sum(axis=1)
        contributions = {
            lvl: float(totals[lvl - 1]) / count
            for lvl in range(1, self.levels + 1)
        }
        if obs.ENABLED:
            for lvl, contribution in contributions.items():
                obs.gauge_set(
                    "characterize_level_contribution",
                    contribution,
                    "per-scale voltage-variance contribution of the last trace",
                    level=str(lvl),
                )
        return contributions

    def top_levels_for(self, current: np.ndarray, count: int) -> set[int]:
        """The ``count`` levels contributing most voltage variance on a trace."""
        contrib = self.level_contributions(current)
        ranked = sorted(contrib, key=lambda lvl: -contrib[lvl])
        return set(ranked[:count])

    def characterize_window(self, window: np.ndarray) -> WindowCharacterization:
        """Run steps 1-5 on one 256-cycle current window."""
        w = np.asarray(window, dtype=float)
        if w.shape != (self.window,):
            raise ValueError(
                f"window must have exactly {self.window} samples"
            )
        dec = decompose(w, "haar", self.levels)
        variances: dict[int, float] = {}
        correlations: dict[int, float] = {}
        v_var = 0.0
        for lvl in dec.levels:
            det = dec.detail(lvl)
            var = float(np.sum(det**2)) / self.window
            rho = adjacent_correlation(det)
            variances[lvl] = var
            correlations[lvl] = rho
            if self.keep_levels is None or lvl in self.keep_levels:
                v_var += self.factors.factor(lvl, rho) * var
        mean_i = float(w.mean())
        mean_v = self.network.vdd - mean_i * self.network.dc_resistance
        return WindowCharacterization(
            mean_current=mean_i,
            scale_variances=variances,
            scale_correlations=correlations,
            voltage_model=GaussianModel(mean_v, v_var),
        )

    # -- whole-trace aggregation ------------------------------------------------

    def estimate_fraction_below(
        self, current: np.ndarray, threshold: float
    ) -> float:
        """Estimated fraction of cycles below ``threshold`` over a trace.

        Tiles the trace with non-overlapping 256-cycle windows and
        averages each window's Gaussian-model probability.
        """
        windows = self.tile_windows(current)
        count = windows.shape[0]
        with obs.span(
            "characterize.trace", windows=count, threshold=threshold
        ):
            probs = self.window_probs_below(windows, threshold)
        obs.counter_inc(
            "characterize_traces_total", 1, "whole-trace characterizations"
        )
        return float(probs.sum()) / count

    def characterize_traces(
        self, traces: np.ndarray, threshold: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """§4.1 probabilities and terms for a whole stack of traces.

        ``traces`` is a rectangular ``(N, cycles)`` matrix; dispatches
        the ``characterize_block`` kernel (one fused pass on the
        ``batched`` backend).  Returns ``(probs, terms)`` of shapes
        ``(N, W)`` and ``(N, levels, W)``; row ``k`` is bit-identical to
        :meth:`characterize_windows` on trace ``k`` alone.
        """
        traces = np.asarray(traces)
        with obs.span(
            "characterize.block",
            traces=int(traces.shape[0]) if traces.ndim == 2 else 0,
            threshold=threshold,
        ):
            return get_kernel("characterize_block")(self, traces, threshold)

    def estimate_traces(
        self, traces: np.ndarray, threshold: float
    ) -> np.ndarray:
        """Per-trace below-threshold fractions for an ``(N, cycles)`` stack.

        Element ``k`` equals :meth:`estimate_fraction_below` on trace
        ``k`` to the bit.
        """
        probs, _ = self.characterize_traces(traces, threshold)
        count = probs.shape[1]
        obs.counter_inc(
            "characterize_traces_total",
            probs.shape[0],
            "whole-trace characterizations",
        )
        return probs.sum(axis=1) / count

    def estimate_voltage_variance(self, current: np.ndarray) -> float:
        """Mean estimated per-window voltage variance over a trace."""
        _, v_var = self.window_voltage_params(self.tile_windows(current))
        return float(np.mean(v_var))


@dataclass(frozen=True)
class TracePrediction:
    """Estimate vs. convolution-simulated truth for one trace (Figure 9)."""

    name: str
    threshold: float
    estimated: float  # estimated fraction of cycles below the threshold
    observed: float  # simulated fraction

    @property
    def error(self) -> float:
        """Signed estimation error (estimated - observed)."""
        return self.estimated - self.observed


def predict_trace(
    network: PowerSupplyNetwork,
    current: np.ndarray,
    threshold: float = 0.97,
    name: str = "trace",
    estimator: WaveletVoltageEstimator | None = None,
) -> TracePrediction:
    """Estimate and verify the below-threshold fraction for one trace."""
    est = estimator or WaveletVoltageEstimator(network)
    estimated = est.estimate_fraction_below(current, threshold)
    sim = ConvolutionVoltageSimulator(network)
    voltage = sim.voltage(current)[min(sim.taps, len(current) // 4) :]
    observed = float(np.mean(voltage < threshold))
    return TracePrediction(
        name=name, threshold=threshold, estimated=estimated, observed=observed
    )

"""Shift-register hardware model of the wavelet monitor (Figure 14).

Figure 14 sketches how a Haar term is computed in hardware: the per-cycle
current values stream down a shift register, and each retained wavelet
term maintains two running sums — the samples under the positive pulse of
its (scaling/wavelet) function and those under the negative pulse.  As a
new value enters, each sum is updated with O(1) adds using the register
taps at the region boundaries; the term's coefficient is the scaled
difference of the sums, and the voltage estimate is the weighted sum of
the K coefficients (constant multiplies, "optimized into shifts").

This module implements exactly that structure, at one add per boundary
per cycle, and is verified cycle-for-cycle against the linear-algebra
monitor of :mod:`repro.core.monitor`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..power import PowerSupplyNetwork
from ..wavelets import CoefficientRef
from .monitor import WaveletVoltageMonitor

__all__ = ["HaarTermRegister", "ShiftRegisterMonitor"]


@dataclass
class HaarTermRegister:
    """Running-sum hardware for one retained Haar coefficient.

    The term covers history offsets ``[start, start + span)`` (offset 0 is
    the newest sample).  Detail terms subtract the older half from the
    newer half; approximation terms sum the whole span.  ``scale`` is the
    orthonormal Haar normalization ``span**-0.5``.
    """

    start: int
    span: int
    weight: float  # the impulse-response coefficient this term multiplies
    is_detail: bool
    pos_sum: float = 0.0
    neg_sum: float = 0.0

    def __post_init__(self) -> None:
        if self.span <= 0 or self.span & (self.span - 1):
            raise ValueError("span must be a positive power of two")
        if self.is_detail and self.span < 2:
            raise ValueError("a detail term spans at least two samples")
        self.scale = self.span**-0.5

    @property
    def mid(self) -> int:
        """Offset where the wavelet's pulse flips sign."""
        return self.start + self.span // 2

    @property
    def end(self) -> int:
        """First offset past the term's support."""
        return self.start + self.span

    def shift(self, entering: float, at_mid: float, at_end: float) -> None:
        """Advance one cycle given the three boundary register taps.

        ``entering`` is the sample that just moved to offset ``start``;
        ``at_mid``/``at_end`` are the samples that just crossed out of the
        positive region and out of the support, respectively.
        """
        if self.is_detail:
            self.pos_sum += entering - at_mid
            self.neg_sum += at_mid - at_end
        else:
            self.pos_sum += entering - at_end

    def coefficient(self) -> float:
        """Current value of this wavelet coefficient."""
        if self.is_detail:
            return self.scale * (self.pos_sum - self.neg_sum)
        return self.scale * self.pos_sum

    def contribution(self) -> float:
        """This term's contribution to the droop estimate."""
        return self.weight * self.coefficient()


class ShiftRegisterMonitor:
    """The full Figure-14 datapath: register + K term units + adder tree.

    Functionally identical to
    :class:`~repro.core.monitor.WaveletVoltageMonitor` (tested to agree to
    floating-point round-off); structured the way the hardware would be,
    so its per-cycle work — ``adds_per_cycle`` — is the complexity the
    paper compares against full convolution.
    """

    def __init__(self, network: PowerSupplyNetwork, terms: int, taps: int | None = None
                 ) -> None:
        reference = WaveletVoltageMonitor(network, terms=terms, taps=taps)
        self.network = network
        self.window = reference.taps
        self.level = reference.convolver.level
        self._register = np.zeros(self.window + 1)
        self.terms = [
            self._make_term(ref, weight)
            for ref, weight in reference.convolver.terms
        ]

    def _make_term(self, ref: CoefficientRef, weight: float) -> HaarTermRegister:
        if ref.kind == "a":
            span = 1 << self.level
            return HaarTermRegister(
                start=ref.index * span, span=span, weight=weight, is_detail=False
            )
        span = 1 << ref.level
        return HaarTermRegister(
            start=ref.index * span, span=span, weight=weight, is_detail=True
        )

    @property
    def adds_per_cycle(self) -> int:
        """Adder count: boundary updates plus the K-term reduction.

        Detail terms need 4 adds (two running sums, two boundaries each),
        approximation terms 2, and combining K contributions costs K-1 —
        versus ``2 * taps - 1`` multiply-adds for full convolution.
        """
        boundary = sum(4 if t.is_detail else 2 for t in self.terms)
        return boundary + max(0, len(self.terms) - 1)

    def observe(self, current: float) -> float:
        """Clock one cycle of current into the register; returns voltage."""
        reg = self._register
        reg[1:] = reg[:-1]
        reg[0] = current
        for term in self.terms:
            term.shift(reg[term.start], reg[term.mid], reg[term.end])
        droop = sum(term.contribution() for term in self.terms)
        return self.network.vdd - droop

    def reset(self) -> None:
        """Clear the register and every running sum."""
        self._register[:] = 0.0
        for term in self.terms:
            term.pos_sum = term.neg_sum = 0.0

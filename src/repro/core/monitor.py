"""The online wavelet-based voltage monitor (§5.1) and extensions.

Because the periodized DWT is orthonormal, the convolution sample
``v(t) = <history, h>`` equals ``<DWT(history), DWT(h)>``; keeping only
the K largest-magnitude coefficients of ``DWT(h)`` gives a monitor whose
hardware cost is K multiply-accumulates instead of hundreds (Figure 13).
Equivalently, the truncated monitor is an FIR filter with the *compressed
kernel* ``IDWT(truncate(DWT(h)))`` — the form used for fast offline
evaluation, while :mod:`repro.core.hardware` implements the same
computation the way Figure 14 builds it (shift registers and running
sums) and is tested to agree cycle-for-cycle.

Beyond the paper, two extensions share the same machinery:

* any orthogonal basis (``wavelet="db4"`` etc.) — the paper notes "there
  is no way to know a priori which wavelet basis is the best match", so
  the basis is a constructor argument and an ablation bench compares
  term-efficiency across bases;
* :class:`PacketVoltageMonitor` — choose the subband tree *adaptively*
  with Coifman–Wickerhauser best-basis on the impulse response, packing
  the kernel's energy into even fewer coefficients.
"""

from __future__ import annotations

import numpy as np

from ..power import PowerSupplyNetwork, default_tap_count, impulse_response
from ..wavelets import (
    WaveletConvolver,
    WaveletPacketTree,
    best_basis,
    next_pow2,
)

__all__ = [
    "WaveletVoltageMonitor",
    "PacketVoltageMonitor",
    "coefficient_error_curve",
    "recommended_margin",
]


class _CompressedKernelMonitor:
    """Common streaming/batch evaluation over a compressed FIR kernel.

    Warm-up semantics (pinned by ``tests/kernels/test_golden.py`` and
    the monitor tests): a fresh (or :meth:`reset`) monitor starts from
    an all-zero history, which is exactly the zero-extension convention
    of causal convolution — so for the first ``taps`` cycles and beyond,
    streaming :meth:`observe` agrees with batch :meth:`estimate_trace`
    to float round-off.  :meth:`estimate_trace` always answers for a
    freshly-reset monitor: it neither reads nor advances the streaming
    history, so interleaving the two interfaces is safe.
    """

    network: PowerSupplyNetwork
    taps: int
    compressed_kernel: np.ndarray

    def _init_history(self) -> None:
        self._history = np.zeros(self.taps)

    # -- streaming interface ---------------------------------------------------

    def observe(self, current: float) -> float:
        """Feed one cycle's current; returns the estimated voltage."""
        self._history[1:] = self._history[:-1]
        self._history[0] = current
        droop = float(np.dot(self._history, self.compressed_kernel))
        return self.network.vdd - droop

    def reset(self) -> None:
        """Forget the current history."""
        self._history[:] = 0.0

    # -- batch interface ---------------------------------------------------------

    def estimate_trace(self, current: np.ndarray) -> np.ndarray:
        """Estimated voltage for every cycle of a trace, from zero history.

        Dispatches through the ``monitor_estimate_trace`` kernel: one
        whole-trace FIR convolution on the vectorized backend, the
        replayed ``observe`` loop on the reference backend.
        """
        from ..kernels import get_kernel

        return get_kernel("monitor_estimate_trace")(self, current)

    def max_error_on(self, current: np.ndarray) -> float:
        """Worst |exact - estimated| voltage over a trace (Figure 13)."""
        from scipy.signal import fftconvolve

        i = np.asarray(current, dtype=float)
        exact_kernel = impulse_response(self.network, self.taps)
        exact = self.network.vdd - fftconvolve(i, exact_kernel)[: len(i)]
        return float(np.max(np.abs(exact - self.estimate_trace(i))))


class WaveletVoltageMonitor(_CompressedKernelMonitor):
    """Truncated wavelet-convolution voltage estimator for one network.

    Parameters
    ----------
    network:
        The supply model whose impulse response is being compressed.
    terms:
        Number of wavelet coefficient terms kept (the paper's K); ``None``
        keeps all (exact convolution).
    taps:
        Impulse-response length; defaults to the ring-down-covering power
        of two.
    wavelet:
        Orthogonal basis; the paper uses Haar (whose square pulses give
        the cheap Figure-14 hardware), but any ``repro.wavelets`` basis
        works mathematically.
    """

    def __init__(
        self,
        network: PowerSupplyNetwork,
        terms: int | None = None,
        taps: int | None = None,
        wavelet: str = "haar",
    ) -> None:
        self.network = network
        self.taps = next_pow2(taps or default_tap_count(network))
        kernel = impulse_response(network, self.taps)
        self.convolver = WaveletConvolver(kernel, wavelet, keep=terms)
        self.terms = self.convolver.keep
        self.wavelet = wavelet
        # The truncated monitor is linear; its action equals an FIR filter
        # with the compressed kernel (reconstruction of the kept terms).
        self.compressed_kernel = self.convolver.compressed_fir()
        self._init_history()


class PacketVoltageMonitor(_CompressedKernelMonitor):
    """Best-basis wavelet-packet variant (extension beyond the paper).

    Decomposes the impulse response over the minimum-entropy packet cover
    instead of the fixed dyadic tree, then keeps the K largest
    coefficients of that cover.  Because any disjoint packet cover is an
    orthonormal transform, the same inner-product identity holds; the
    adaptive cover concentrates kernel energy harder, so for a given K
    the error is typically at or below the DWT monitor's.
    """

    def __init__(
        self,
        network: PowerSupplyNetwork,
        terms: int | None = None,
        taps: int | None = None,
        wavelet: str = "haar",
        depth: int | None = None,
    ) -> None:
        self.network = network
        self.taps = next_pow2(taps or default_tap_count(network))
        kernel = impulse_response(network, self.taps)
        tree = WaveletPacketTree(kernel, wavelet, depth)
        self._tree = tree
        self._cover = best_basis(tree)
        flat: list[tuple[tuple[int, int], int, float]] = []
        for node, coeffs in self._cover.items():
            flat.extend((node, k, float(v)) for k, v in enumerate(coeffs))
        flat.sort(key=lambda t: -abs(t[2]))
        self.total_terms = len(flat)
        if terms is None:
            terms = self.total_terms
        if not 0 <= terms <= self.total_terms:
            raise ValueError(f"terms must be in [0, {self.total_terms}]")
        self.terms = terms
        kept = flat[:terms]
        truncated = {
            node: np.zeros_like(coeffs) for node, coeffs in self._cover.items()
        }
        for node, k, value in kept:
            truncated[node][k] = value
        self.compressed_kernel = tree.reconstruct_from(truncated)
        self._init_history()

    @property
    def cover_size(self) -> int:
        """Number of packet nodes in the chosen best basis."""
        return len(self._cover)


def coefficient_error_curve(
    network: PowerSupplyNetwork,
    current: np.ndarray,
    term_counts: list[int] | range,
    taps: int | None = None,
    monitor_cls=WaveletVoltageMonitor,
    **monitor_kwargs,
) -> dict[int, float]:
    """Max estimation error vs. number of wavelet terms (Figure 13).

    Evaluates the truncated monitor over ``current`` for each K; errors
    trend downward in K and scale linearly with the target impedance
    percentage.  ``monitor_cls`` selects the monitor flavour (DWT or
    packet best-basis) for ablation studies.
    """
    out: dict[int, float] = {}
    for k in term_counts:
        mon = monitor_cls(network, terms=k, taps=taps, **monitor_kwargs)
        out[k] = mon.max_error_on(current)
    return out


def recommended_margin(
    network: PowerSupplyNetwork,
    terms: int,
    calibration_trace: np.ndarray,
    sensor_delay_cycles: int = 1,
    slack: float = 0.002,
) -> float:
    """A safe control-threshold tolerance for a K-term monitor.

    Ties Figure 13 to Figure 15: the control margin must cover (a) the
    monitor's worst estimation error on a stressing calibration trace,
    (b) how far the voltage can move during the sensor-to-actuator delay,
    and (c) a small fixed slack.  Using this margin, the controller of
    §5.2 engages before the true voltage can reach the fault level.
    """
    if sensor_delay_cycles < 0:
        raise ValueError("sensor delay cannot be negative")
    if slack < 0:
        raise ValueError("slack cannot be negative")
    monitor = WaveletVoltageMonitor(network, terms=terms)
    estimation = monitor.max_error_on(calibration_trace)
    # Worst per-cycle voltage slew observed on the calibration trace.
    from scipy.signal import fftconvolve

    kernel = impulse_response(network, monitor.taps)
    i = np.asarray(calibration_trace, dtype=float)
    v = network.vdd - fftconvolve(i, kernel)[: len(i)]
    worst_slew = float(np.max(np.abs(np.diff(v)))) if len(v) > 1 else 0.0
    return estimation + sensor_delay_cycles * worst_slew + slack

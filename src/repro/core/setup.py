"""Shared experimental setup: the calibrated supply networks.

Every evaluation in the paper runs against supply networks quoted as a
percentage of target impedance, where 100 % is calibrated so that the
worst-case execution sequence exactly fills the ±5 % band (§3.1).  This
module runs that calibration once — stressmark through the simulator,
impedance from the droop — and hands out the 100/125/150/200 % networks
the figures sweep over.
"""

from __future__ import annotations

from ..power import PowerSupplyNetwork, calibrate_peak_impedance
from ..uarch import Simulator
from ..workloads import stressmark_stream

__all__ = ["reference_network", "calibrated_supply", "IMPEDANCE_PERCENTS"]

#: The target-impedance points the paper evaluates (Figures 13 and 15).
IMPEDANCE_PERCENTS = (125.0, 150.0, 200.0)

_CACHE: dict[tuple, float] = {}


def reference_network() -> PowerSupplyNetwork:
    """The uncalibrated base supply model (3 GHz, 100 MHz resonance)."""
    return PowerSupplyNetwork()


def calibrated_supply(
    percent: float = 100.0,
    base: PowerSupplyNetwork | None = None,
    stress_cycles: int = 12288,
) -> PowerSupplyNetwork:
    """A supply network at ``percent`` target impedance.

    The 100 % point comes from executing the dI/dt stressmark on the
    Table-1 machine and finding the peak impedance at which its droop
    exactly reaches ±5 % of Vdd; other percentages scale it.
    """
    net = base or reference_network()
    key = (
        round(net.resonant_hz),
        round(net.quality_factor, 6),
        net.clock_hz,
        stress_cycles,
    )
    if key not in _CACHE:
        half_period = max(1, int(round(net.resonant_period_cycles / 2)))
        result = Simulator().run(
            stressmark_stream(half_period), stress_cycles, name="stressmark"
        )
        # Skip only the pipeline-fill prefix: the worst excursion often
        # rides on the first cold-miss-aligned burst, and target impedance
        # is defined against the *worst case*, so it must stay in view.
        settled = result.current[1024:]
        _CACHE[key] = calibrate_peak_impedance(net, settled)
    return net.with_peak_impedance(_CACHE[key]).with_scale(percent / 100.0)

"""Baseline dI/dt sensing/control schemes (§6, Table 2).

The paper positions wavelet convolution against three prior proposals:

* **Analog voltage sensing** (Joseph et al., HPCA-9): an on-die analog
  sensor reads the true voltage with some delay — accurate but requires
  mixed-signal design.  Modeled as the exact streaming voltage plus a
  configurable sensing delay.
* **Full convolution** (Grochowski et al., HPCA-8): digitally evaluate
  Eq. 6 with every tap — accurate but hundreds of multiply-adds per
  cycle, hard to build at 1-2 cycle latency.  Modeled exactly.
* **Pipeline damping** (Powell & Vijaykumar, ISCA '03): no voltage
  estimate at all; bound the *current delta* over a window, stalling or
  padding whenever the bound would be violated.  Cheap, but blind to the
  actual voltage — the high-false-positive scheme whose slowdowns reach
  22 %.

All three expose the same interfaces as the wavelet scheme (``observe``
for monitors, ``update`` for controllers) so the Table-2 bench can run
them side by side, and each reports its hardware-cost proxy.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..power import (
    PowerSupplyNetwork,
    StreamingVoltageModel,
    default_tap_count,
    impulse_response,
)

__all__ = [
    "AnalogVoltageSensor",
    "FullConvolutionMonitor",
    "PipelineDampingController",
]


class AnalogVoltageSensor:
    """Ideal analog sensor: the true voltage, ``delay`` cycles late.

    Hardware cost is nil digitally (``ops_per_cycle = 0``) but the design
    burden is the analog circuit itself; the delay models sense-and-
    compare latency, which bounds how tight the control margin can be.
    """

    def __init__(self, network: PowerSupplyNetwork, delay: int = 2) -> None:
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.network = network
        self.delay = delay
        self._truth = StreamingVoltageModel(network)
        self._queue: deque[float] = deque(
            [network.vdd] * delay, maxlen=max(delay, 1)
        )
        self.ops_per_cycle = 0

    def observe(self, current: float) -> float:
        """Feed one cycle; returns the delayed true voltage."""
        v = self._truth.step(current)
        if self.delay == 0:
            return v
        out = self._queue[0]
        self._queue.append(v)
        return out

    def reset(self) -> None:
        """Clear sensor state."""
        self._truth.reset()
        self._queue = deque([self.network.vdd] * self.delay,
                            maxlen=max(self.delay, 1))


class FullConvolutionMonitor:
    """Grochowski-style digital convolution with every tap.

    Functionally exact over its window; the point of Table 2 is its cost:
    ``taps`` multiply-accumulates every cycle.
    """

    def __init__(self, network: PowerSupplyNetwork, taps: int | None = None) -> None:
        self.network = network
        self.taps = taps or default_tap_count(network)
        self.kernel = impulse_response(network, self.taps)
        self._history = np.zeros(self.taps)
        self.ops_per_cycle = 2 * self.taps - 1  # multiplies + adds

    def observe(self, current: float) -> float:
        """Feed one cycle's current; returns the convolved voltage."""
        self._history[1:] = self._history[:-1]
        self._history[0] = current
        return self.network.vdd - float(np.dot(self._history, self.kernel))

    def reset(self) -> None:
        """Forget the current history."""
        self._history[:] = 0.0


class PipelineDampingController:
    """Powell/Vijaykumar pipeline damping: bound the current slew.

    Tracks current over a short window and intervenes whenever the change
    across the window exceeds ``delta``: a rise is met with an issue
    stall, a fall with no-op padding.  Bounding dI/dt this way needs no
    voltage estimate, but current swings that the supply would have
    tolerated still trigger control — the false-positive problem.

    Implements the controller protocol (``update``) directly.
    """

    def __init__(
        self,
        network: PowerSupplyNetwork,
        delta: float,
        window: int = 8,
        noop_rate: int = 4,
    ) -> None:
        if delta <= 0:
            raise ValueError("delta must be positive")
        if window < 1:
            raise ValueError("window must be at least one cycle")
        self.network = network
        self.delta = delta
        self.window = window
        self.noop_rate = noop_rate
        self._history: deque[float] = deque(maxlen=window + 1)
        self.stall_decisions = 0
        self.boost_decisions = 0
        self.cycles = 0
        self.false_positives = 0
        self.ops_per_cycle = 2  # one subtract + one compare

    def update(self, current: float) -> tuple[bool, int]:
        """Observe one cycle; bound the slew on the next."""
        self.cycles += 1
        self._history.append(current)
        if len(self._history) <= self.window:
            return False, 0
        change = self._history[-1] - self._history[0]
        if change > self.delta:
            self.stall_decisions += 1
            return True, 0
        if change < -self.delta:
            self.boost_decisions += 1
            return False, self.noop_rate
        return False, 0

    @property
    def engagement_rate(self) -> float:
        """Fraction of cycles with an intervention."""
        if self.cycles == 0:
            return 0.0
        return (self.stall_decisions + self.boost_decisions) / self.cycles

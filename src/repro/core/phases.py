"""Wavelet-signature phase classification (extension of §4.3).

The paper leans on program-phase behaviour twice: SimPoint intervals pick
*where* to simulate, and §4's temporal localization exists because "real
programs have been shown to possess complex phase behavior".  This module
closes the loop: it classifies execution windows into phases using their
*wavelet signatures* — the per-scale variance profile of each 256-cycle
current window, exactly the features the §4.1 estimator already computes
— and then characterizes each phase's dI/dt exposure separately.

Clustering is a small, deterministic, from-scratch k-means (k-means++
seeding, Lloyd iterations) over standardized log-variance features, so no
external ML dependency is involved.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..power import PowerSupplyNetwork
from .characterization import WINDOW, WaveletVoltageEstimator

__all__ = ["PhaseSummary", "WaveletPhaseClassifier"]


def _kmeans(
    points: np.ndarray, k: int, rng: np.random.Generator, iterations: int = 50
) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic k-means++ / Lloyd; returns (centroids, labels)."""
    n = len(points)
    # k-means++ seeding.
    centroids = [points[int(rng.integers(n))]]
    for _ in range(1, k):
        d2 = np.min(
            [np.sum((points - c) ** 2, axis=1) for c in centroids], axis=0
        )
        total = d2.sum()
        if total <= 0:
            centroids.append(points[int(rng.integers(n))])
            continue
        centroids.append(points[int(rng.choice(n, p=d2 / total))])
    centers = np.array(centroids)
    labels = np.zeros(n, dtype=int)
    for _ in range(iterations):
        dists = np.array(
            [np.sum((points - c) ** 2, axis=1) for c in centers]
        )
        new_labels = np.argmin(dists, axis=0)
        if np.array_equal(new_labels, labels) and _ > 0:
            break
        labels = new_labels
        for j in range(k):
            members = points[labels == j]
            if len(members):
                centers[j] = members.mean(axis=0)
    return centers, labels


@dataclass(frozen=True)
class PhaseSummary:
    """Aggregate behaviour of one detected phase."""

    phase: int
    fraction: float  # share of execution windows
    mean_current: float
    scale_variances: dict[int, float]  # mean per-scale variance
    emergency_probability: float | None  # mean P(V < threshold), if asked

    @property
    def dominant_level(self) -> int:
        """The wavelet scale carrying the most current variance."""
        return max(self.scale_variances, key=self.scale_variances.get)


class WaveletPhaseClassifier:
    """Cluster 256-cycle windows by their wavelet variance signatures.

    Parameters
    ----------
    phases:
        Number of phases (k).
    levels:
        Decomposition depth of each window.
    seed:
        Clustering seed (deterministic given data + seed).
    """

    def __init__(self, phases: int = 3, levels: int = 8, seed: int = 0) -> None:
        if phases < 1:
            raise ValueError("need at least one phase")
        if (1 << levels) != WINDOW:
            raise ValueError("levels must fully decompose the 256-cycle window")
        self.phases = phases
        self.levels = levels
        self.seed = seed
        self._centers: np.ndarray | None = None
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None
        self.labels_: np.ndarray | None = None
        self._features: np.ndarray | None = None
        self._windows: np.ndarray | None = None

    # -- features ---------------------------------------------------------------

    def _window_features(self, windows: np.ndarray) -> np.ndarray:
        """Per-window signature: log per-scale variances + mean current."""
        from ..wavelets import decompose

        rows = []
        for w in windows:
            dec = decompose(w, "haar", self.levels)
            variances = [
                float(np.sum(dec.detail(lvl) ** 2)) / WINDOW
                for lvl in dec.levels
            ]
            rows.append(
                [np.log10(v + 1e-9) for v in variances] + [float(w.mean())]
            )
        return np.array(rows)

    def _standardize(self, feats: np.ndarray) -> np.ndarray:
        assert self._mean is not None and self._std is not None
        return (feats - self._mean) / self._std

    # -- fitting ----------------------------------------------------------------

    def fit(self, current: np.ndarray) -> "WaveletPhaseClassifier":
        """Cluster the trace's windows; stores per-window ``labels_``."""
        i = np.asarray(current, dtype=float)
        count = len(i) // WINDOW
        if count < self.phases:
            raise ValueError(
                f"trace has {count} windows but {self.phases} phases requested"
            )
        windows = i[: count * WINDOW].reshape(count, WINDOW)
        feats = self._window_features(windows)
        self._mean = feats.mean(axis=0)
        self._std = np.where(feats.std(axis=0) > 1e-12, feats.std(axis=0), 1.0)
        scaled = self._standardize(feats)
        rng = np.random.default_rng(self.seed)
        self._centers, labels = _kmeans(scaled, self.phases, rng)
        # Relabel phases by descending mean current so phase 0 is always
        # the hottest — stable, meaningful ids across runs.
        order = np.argsort(
            [-windows[labels == j].mean() if np.any(labels == j) else np.inf
             for j in range(self.phases)]
        )
        remap = np.empty(self.phases, dtype=int)
        remap[order] = np.arange(self.phases)
        self.labels_ = remap[labels]
        self._centers = self._centers[order]
        self._features = scaled
        self._windows = windows
        return self

    def classify(self, window: np.ndarray) -> int:
        """Assign one 256-cycle window to its nearest phase."""
        if self._centers is None:
            raise RuntimeError("call fit() first")
        w = np.asarray(window, dtype=float)
        if w.shape != (WINDOW,):
            raise ValueError(f"window must have exactly {WINDOW} samples")
        feat = self._standardize(self._window_features(w[None, :]))[0]
        dists = np.sum((self._centers - feat) ** 2, axis=1)
        return int(np.argmin(dists))

    # -- reporting ---------------------------------------------------------------

    def summarize(
        self,
        network: PowerSupplyNetwork | None = None,
        threshold: float = 0.97,
    ) -> list[PhaseSummary]:
        """Per-phase behaviour; with a network, per-phase dI/dt exposure."""
        if self.labels_ is None or self._windows is None:
            raise RuntimeError("call fit() first")
        estimator = (
            WaveletVoltageEstimator(network) if network is not None else None
        )
        out = []
        for j in range(self.phases):
            members = self._windows[self.labels_ == j]
            if len(members) == 0:
                out.append(
                    PhaseSummary(j, 0.0, 0.0, {lvl: 0.0 for lvl in
                                               range(1, self.levels + 1)}, None)
                )
                continue
            from ..wavelets import decompose

            per_scale = {lvl: 0.0 for lvl in range(1, self.levels + 1)}
            prob = 0.0
            for w in members:
                dec = decompose(w, "haar", self.levels)
                for lvl in per_scale:
                    per_scale[lvl] += (
                        float(np.sum(dec.detail(lvl) ** 2)) / WINDOW
                    )
                if estimator is not None:
                    prob += estimator.characterize_window(w).prob_below(
                        threshold
                    )
            n = len(members)
            out.append(
                PhaseSummary(
                    phase=j,
                    fraction=n / len(self._windows),
                    mean_current=float(members.mean()),
                    scale_variances={l: v / n for l, v in per_scale.items()},
                    emergency_probability=(
                        prob / n if estimator is not None else None
                    ),
                )
            )
        return out

"""Closed-loop dI/dt control (§5.2-5.3).

A controller watches per-cycle current through a voltage monitor and
actuates the two mechanisms every proposal in the literature uses: stall
instruction issue when the (estimated) voltage nears the low fault level,
and inject no-ops when it nears the high level.  The control experiment
runs a benchmark twice — free-running and controlled — to the same
committed instruction count, giving the slowdown of Figure 15, and tracks
the true voltage (streaming second-order model) to count residual faults
and false-positive control actions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs import trace as obs
from ..power import PowerSupplyNetwork, StreamingVoltageModel
from ..uarch import Pipeline, ProcessorConfig, TABLE_1
from ..workloads.generator import generate, prewarm_caches
from ..workloads.spec import WorkloadProfile, get_profile

__all__ = [
    "ThresholdController",
    "HysteresisController",
    "ControlResult",
    "run_control_experiment",
]


class ThresholdController:
    """Threshold actuation around any voltage monitor (§5.2 step 3).

    Parameters
    ----------
    monitor:
        Object with ``observe(current) -> estimated_voltage``.
    network:
        Supplies the fault band (±5 % of Vdd).
    margin:
        Control-threshold tolerance in volts: the low control point is
        ``v_min + margin`` and the high one ``v_max - margin``.  The
        paper's Figure 15 sweeps this from optimistic (10 mV) to
        conservative; it must exceed the monitor's estimation error for
        control to be safe.
    noop_rate:
        No-ops injected per cycle while boosting.
    """

    def __init__(
        self,
        monitor,
        network: PowerSupplyNetwork,
        margin: float = 0.010,
        noop_rate: int = 4,
    ) -> None:
        if margin < 0:
            raise ValueError("margin must be non-negative")
        if noop_rate < 0:
            raise ValueError("noop_rate must be non-negative")
        self.monitor = monitor
        self.network = network
        self.v_low_control = network.v_min + margin
        self.v_high_control = network.v_max - margin
        if self.v_low_control >= self.v_high_control:
            raise ValueError("margin leaves no operating window")
        self.noop_rate = noop_rate
        self.stall_decisions = 0
        self.boost_decisions = 0
        self.cycles = 0

    def update(self, current: float) -> tuple[bool, int]:
        """One control step: observe the cycle, decide the next one."""
        estimate = self.monitor.observe(current)
        self.cycles += 1
        if estimate < self.v_low_control:
            self.stall_decisions += 1
            return True, 0
        if estimate > self.v_high_control:
            self.boost_decisions += 1
            return False, self.noop_rate
        return False, 0

    @property
    def engagement_rate(self) -> float:
        """Fraction of cycles on which the controller intervened."""
        if self.cycles == 0:
            return 0.0
        return (self.stall_decisions + self.boost_decisions) / self.cycles


class HysteresisController(ThresholdController):
    """Threshold control with engage/release hysteresis.

    The plain threshold controller flips its actuation per cycle, which
    can chatter when the estimate hovers at a control point (stall, ease,
    re-stall ...).  This variant latches: once engaged it stays engaged
    until the estimate recovers past a *release* point deeper inside the
    safe band, trading a little extra intervention for far fewer
    engage/disengage transitions — the classic comparator-hysteresis
    trick a hardware implementation would use anyway.
    """

    def __init__(
        self,
        monitor,
        network: PowerSupplyNetwork,
        margin: float = 0.010,
        release: float = 0.006,
        noop_rate: int = 4,
    ) -> None:
        super().__init__(monitor, network, margin, noop_rate)
        if release < 0:
            raise ValueError("release must be non-negative")
        self.v_low_release = self.v_low_control + release
        self.v_high_release = self.v_high_control - release
        if self.v_low_release >= self.v_high_release:
            raise ValueError("release band leaves no operating window")
        self._stalling = False
        self._boosting = False
        self.transitions = 0

    def update(self, current: float) -> tuple[bool, int]:
        """Latched control step."""
        estimate = self.monitor.observe(current)
        self.cycles += 1
        if self._stalling:
            if estimate >= self.v_low_release:
                self._stalling = False
                self.transitions += 1
        elif estimate < self.v_low_control:
            self._stalling = True
            self.transitions += 1
        if self._stalling:
            self.stall_decisions += 1
            return True, 0
        if self._boosting:
            if estimate <= self.v_high_release:
                self._boosting = False
                self.transitions += 1
        elif estimate > self.v_high_control:
            self._boosting = True
            self.transitions += 1
        if self._boosting:
            self.boost_decisions += 1
            return False, self.noop_rate
        return False, 0


@dataclass(frozen=True)
class ControlResult:
    """Outcome of one closed-loop control experiment."""

    name: str
    baseline_cycles: int  # cycles to commit the work, uncontrolled
    controlled_cycles: int  # cycles to commit the same work, controlled
    instructions: int
    baseline_faults: int  # true-voltage fault cycles without control
    controlled_faults: int  # residual fault cycles with control
    stall_cycles: int
    boost_cycles: int
    false_positives: int  # interventions while the true voltage was safe

    @property
    def slowdown(self) -> float:
        """Relative performance loss (Figure 15's y-axis)."""
        if self.baseline_cycles == 0:
            return 0.0
        return self.controlled_cycles / self.baseline_cycles - 1.0

    @property
    def false_positive_rate(self) -> float:
        """Fraction of interventions that were unnecessary (Table 2)."""
        total = self.stall_cycles + self.boost_cycles
        return self.false_positives / total if total else 0.0


def _run_pipeline(
    profile: WorkloadProfile,
    config: ProcessorConfig,
    network: PowerSupplyNetwork,
    controller,
    target_instructions: int | None,
    max_cycles: int,
    warmup_cycles: int,
    control_band: tuple[float, float] | None,
) -> tuple[int, int, int, np.ndarray]:
    """One run; returns (cycles, committed, faults, current_trace)."""
    pipe = Pipeline(config, iter(generate(profile)))
    prewarm_caches(pipe.caches, profile)
    for _ in range(warmup_cycles):
        pipe.tick()
    start_committed = pipe.stats.committed
    truth = StreamingVoltageModel(network)
    faults = 0
    false_pos = 0
    currents = np.empty(max_cycles)
    n = 0
    committed = 0
    last_commit_cycle = 0
    # hoisted so the per-cycle loop pays one local-bool test when off
    obs_on = obs.ENABLED
    in_emergency = False
    while n < max_cycles:
        amps = pipe.tick()
        currents[n] = amps
        n += 1
        v_true = truth.step(amps)
        if v_true < network.v_min or v_true > network.v_max:
            faults += 1
            if obs_on and not in_emergency:
                obs.event(
                    "emergency_onset",
                    benchmark=profile.name,
                    cycle=n,
                    voltage=round(v_true, 6),
                    controlled=controller is not None,
                )
            in_emergency = True
        else:
            in_emergency = False
        if controller is not None:
            stall, noops = controller.update(amps)
            if (stall or noops) and control_band is not None:
                lo, hi = control_band
                if lo <= v_true <= hi:
                    false_pos += 1
            pipe.stall_issue = stall
            pipe.inject_noops = noops
        now_committed = pipe.stats.committed - start_committed
        if now_committed > committed:
            committed = now_committed
            last_commit_cycle = n
        if target_instructions is not None and committed >= target_instructions:
            break
        if pipe.drained:
            break
    if controller is not None:
        controller.false_positives = false_pos  # type: ignore[attr-defined]
    # Both runs are scored at the cycle of their final commit, so trailing
    # stall cycles after the last useful instruction don't skew the
    # slowdown comparison between runs of identical committed work.
    return last_commit_cycle, committed, faults, currents[:n]


def run_control_experiment(
    benchmark: str | WorkloadProfile,
    network: PowerSupplyNetwork,
    controller_factory,
    cycles: int = 16384,
    config: ProcessorConfig = TABLE_1,
    warmup_cycles: int = 4096,
    safety_band: float = 0.005,
) -> ControlResult:
    """Measure slowdown and fault suppression for one controller.

    Runs uncontrolled for ``cycles`` to fix the work unit (committed
    instructions), then re-runs under control until the same work
    completes (bounded at 4x the cycles).  ``controller_factory()`` must
    build a fresh controller, e.g.
    ``lambda: ThresholdController(WaveletVoltageMonitor(net, 13), net)``.

    ``safety_band`` defines false positives: an intervention taken while
    the true voltage was at least that far inside the control band.
    """
    profile = get_profile(benchmark) if isinstance(benchmark, str) else benchmark
    base_cycles, base_insts, base_faults, _ = _run_pipeline(
        profile, config, network, None, None, cycles, warmup_cycles, None
    )
    controller = controller_factory()
    band = (
        getattr(controller, "v_low_control", network.v_min) + safety_band,
        getattr(controller, "v_high_control", network.v_max) - safety_band,
    )
    with obs.span(
        "control.experiment",
        benchmark=profile.name,
        controller=type(controller).__name__,
    ):
        ctl_cycles, ctl_insts, ctl_faults, _ = _run_pipeline(
            profile,
            config,
            network,
            controller,
            base_insts,
            4 * cycles,
            warmup_cycles,
            band,
        )
    if obs.ENABLED:
        stalls = getattr(controller, "stall_decisions", 0)
        boosts = getattr(controller, "boost_decisions", 0)
        obs.counter_inc(
            "control_stall_actuations_total",
            stalls,
            "issue-stall actuations taken by controllers",
        )
        obs.counter_inc(
            "control_boost_actuations_total",
            boosts,
            "no-op-injection actuations taken by controllers",
        )
        obs.counter_inc(
            "control_false_positives_total",
            getattr(controller, "false_positives", 0),
            "interventions taken while the true voltage was safe",
        )
        obs.gauge_set(
            "control_engagement_rate",
            getattr(controller, "engagement_rate", 0.0),
            "fraction of cycles the controller intervened on",
            benchmark=profile.name,
        )
        obs.event(
            "actuation_summary",
            benchmark=profile.name,
            controller=type(controller).__name__,
            stalls=stalls,
            boosts=boosts,
            residual_faults=ctl_faults,
        )
    return ControlResult(
        name=profile.name,
        baseline_cycles=base_cycles,
        controlled_cycles=ctl_cycles,
        instructions=base_insts,
        baseline_faults=base_faults,
        controlled_faults=ctl_faults,
        stall_cycles=getattr(controller, "stall_decisions", 0),
        boost_cycles=getattr(controller, "boost_decisions", 0),
        false_positives=getattr(controller, "false_positives", 0),
    )

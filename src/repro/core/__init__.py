"""The paper's contribution: offline wavelet dI/dt characterization (§4)
and online wavelet-convolution voltage monitoring and control (§5), plus
the baseline schemes of Table 2 and the shared calibration setup."""

from .analysis import (
    BenchmarkGaussianity,
    L2MissReport,
    benchmark_voltage_histogram,
    gaussianity_study,
    l2_miss_report,
)
from .baselines import (
    AnalogVoltageSensor,
    FullConvolutionMonitor,
    PipelineDampingController,
)
from .calibration import ScaleFactorModel, calibrate_scale_factors
from .characterization import (
    WINDOW,
    TracePrediction,
    WaveletVoltageEstimator,
    WindowCharacterization,
    predict_trace,
)
from .controller import (
    ControlResult,
    HysteresisController,
    ThresholdController,
    run_control_experiment,
)
from .hardware import HaarTermRegister, ShiftRegisterMonitor
from .phase_control import PhaseAwareController
from .phases import PhaseSummary, WaveletPhaseClassifier
from .monitor import (
    PacketVoltageMonitor,
    WaveletVoltageMonitor,
    coefficient_error_curve,
    recommended_margin,
)
from .setup import IMPEDANCE_PERCENTS, calibrated_supply, reference_network

__all__ = [
    "AnalogVoltageSensor",
    "BenchmarkGaussianity",
    "ControlResult",
    "FullConvolutionMonitor",
    "HysteresisController",
    "HaarTermRegister",
    "IMPEDANCE_PERCENTS",
    "L2MissReport",
    "PacketVoltageMonitor",
    "PhaseAwareController",
    "PhaseSummary",
    "WaveletPhaseClassifier",
    "PipelineDampingController",
    "ScaleFactorModel",
    "ShiftRegisterMonitor",
    "ThresholdController",
    "TracePrediction",
    "WINDOW",
    "WaveletVoltageEstimator",
    "WaveletVoltageMonitor",
    "WindowCharacterization",
    "benchmark_voltage_histogram",
    "calibrate_scale_factors",
    "calibrated_supply",
    "coefficient_error_curve",
    "gaussianity_study",
    "l2_miss_report",
    "predict_trace",
    "recommended_margin",
    "reference_network",
    "run_control_experiment",
]

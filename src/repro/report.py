"""One-call evaluation report: every experiment, one text document.

``generate_report`` runs the paper's evaluation (or a quick subset) via
:mod:`repro.experiments` and renders the results — with paper-reference
notes — into a single plain-text report suitable for a terminal, a log
artifact, or pasting into an issue.  The CLI exposes it as
``python -m repro report [--quick]``.
"""

from __future__ import annotations


from . import viz
from .core import calibrated_supply
from .experiments import (
    HIGH_L2_MISS,
    LOW_L2_MISS,
    PROBLEMATIC,
    QUIET,
    figure6,
    figure9,
    figure12,
    figure13,
    figures10_11,
    simulate_suite,
    table2,
)

__all__ = ["generate_report", "QUICK_SUBSET"]

#: Benchmarks covering every behavioural group, for --quick runs.
QUICK_SUBSET = (
    "gzip",
    "eon",
    "mcf",
    "swim",
    "mgrid",
    "gcc",
    "galgel",
    "apsi",
    "vpr",
    "gap",
    "equake",
    "mesa",
    "lucas",
    "art",
    "crafty",
)


def _section(title: str) -> str:
    bar = "=" * len(title)
    return f"\n{title}\n{bar}\n"


def generate_report(
    cycles: int = 16384,
    names: tuple[str, ...] | None = QUICK_SUBSET,
    include_control: bool = True,
) -> str:
    """Run the evaluation and return the formatted report text.

    ``names=None`` runs the full 26-benchmark suite.  ``include_control``
    adds the (slow) closed-loop Table-2 comparison.
    """
    out: list[str] = []
    out.append("Wavelet dI/dt characterization — evaluation report")
    out.append(f"(traces: {cycles} cycles/benchmark; "
               f"{'full suite' if names is None else f'{len(names or ())} benchmarks'})")

    net150 = calibrated_supply(150)
    traces = simulate_suite(cycles=cycles, names=names)
    available = tuple(traces)

    # -- machine overview -----------------------------------------------------
    out.append(_section("Workloads"))
    out.append(viz.table(
        {
            name: [
                r.stats.ipc,
                r.mean_current,
                r.stats.l2_mpki,
                r.stats.misprediction_rate * 100,
            ]
            for name, r in traces.items()
        },
        headers=["IPC", "mean A", "L2 MPKI", "mispred %"],
    ))

    # -- Figure 6 ---------------------------------------------------------------
    fig6 = figure6(traces, samples_per_size=60)
    out.append(_section("Gaussian windows (Figure 6)"))
    out.append(viz.table(
        {
            suite: [fig6.rates[suite][w] * 100 for w in fig6.windows]
            for suite in ("int", "fp", "all")
        },
        headers=[f"{w}cyc %" for w in fig6.windows],
    ))
    out.append("paper: 27-39% of windows Gaussian at 95% significance")

    # -- Figure 9 ---------------------------------------------------------------
    fig9 = figure9(net150, traces)
    out.append(_section("Offline voltage prediction (Figure 9, 150% Z)"))
    out.append(viz.table(
        {
            name: [p.estimated * 100, p.observed * 100, p.error * 100]
            for name, p in fig9.predictions.items()
        },
        headers=["est %", "obs %", "err pp"],
    ))
    out.append(f"RMS error {fig9.rms_error * 100:.2f}%  (paper: 0.94%); "
               f"rank corr {fig9.rank_correlation:+.2f}")
    hot = [n for n in PROBLEMATIC if n in available]
    cold = [n for n in QUIET if n in available]
    if hot and cold:
        out.append(
            f"problematic group min (obs): "
            f"{min(fig9.predictions[n].observed for n in hot) * 100:.2f}%  |  "
            f"quiet group max (obs): "
            f"{max(fig9.predictions[n].observed for n in cold) * 100:.2f}%"
        )

    # -- Figures 10/11 ------------------------------------------------------------
    both = tuple(n for n in LOW_L2_MISS + HIGH_L2_MISS if n in available)
    if both:
        f1011 = figures10_11(net150, traces, names=both)
        out.append(_section("Voltage histograms by L2 class (Figures 10/11)"))
        out.append(viz.bar_chart(
            {n: f1011.spike_ratios[n] for n in both},
            title="nominal-voltage spike ratio (low-miss left, high-miss right)",
            fmt="{:6.1f}",
        ))

    # -- Figure 12 -----------------------------------------------------------------
    fig12 = figure12(traces, samples_per_size=60)
    out.append(_section("Current Gaussianity vs L2 misses (Figure 12)"))
    out.append(viz.bar_chart(
        {n: fig12.rates[n] * 100 for n in fig12.rates},
        fmt="{:6.1f}",
    ))
    out.append(f"rank correlation with L2 MPKI: {fig12.rank_correlation:+.2f} "
               f"(paper: strongly negative)")

    # -- Figure 13 ------------------------------------------------------------------
    stress_name = "gcc" if "gcc" in available else available[0]
    curves = figure13(
        {125.0: calibrated_supply(125), 150.0: net150,
         200.0: calibrated_supply(200)},
        traces[stress_name].current[:6144],
        term_counts=[1, 5, 9, 13, 20, 30],
    )
    out.append(_section("Monitor error vs wavelet terms (Figure 13)"))
    out.append(viz.table(
        {f"K={k}": [curves[p][k] * 1e3 for p in (125.0, 150.0, 200.0)]
         for k in (1, 5, 9, 13, 20, 30)},
        headers=["125% mV", "150% mV", "200% mV"],
    ))
    out.append("paper: ~20 mV at K = 9/13/20 for 125/150/200%")

    # -- Table 2 ---------------------------------------------------------------------
    if include_control:
        workloads = tuple(
            n for n in ("mgrid", "gcc", "gzip") if n in available
        ) or available[:2]
        rows = table2(net150, workloads=workloads, cycles=min(cycles, 10240))
        out.append(_section("Scheme comparison (Table 2, closed loop)"))
        out.append(viz.table(
            {
                scheme: [
                    row.mean_slowdown * 100,
                    row.false_positive_rate * 100,
                    row.fault_reduction * 100,
                    float(row.ops_per_cycle),
                ]
                for scheme, row in rows.items()
            },
            headers=["slowdn %", "FP %", "cut %", "ops/cyc"],
        ))
        out.append("paper: wavelet = voltage-sensor accuracy at a fraction "
                   "of convolution hardware; damping up to 22% slowdown")

    out.append("\n(see EXPERIMENTS.md for the full paper-vs-measured record)")
    return "\n".join(out)

"""repro: a reproduction of "Wavelet Analysis for Microprocessor Design:
Experiences with Wavelet-Based dI/dt Characterization" (HPCA 2004).

Subpackages
-----------
``repro.wavelets``
    From-scratch discrete wavelet transform library (Haar/Daubechies,
    subbands, scalograms, wavelet variance, subband convolution).
``repro.power``
    Second-order power-delivery-network model, impulse/frequency
    responses, voltage simulation, target-impedance calibration.
``repro.uarch``
    Out-of-order superscalar simulator (Table 1 machine) with
    Wattch-style activity-based power accounting.
``repro.workloads``
    Synthetic SPEC CPU2000 workload models and the dI/dt stressmark.
``repro.stats``
    Gaussian models, chi-squared Gaussianity testing, windowed statistics.
``repro.core``
    The paper's contribution: offline wavelet-variance voltage
    characterization and the online truncated wavelet-convolution
    voltage monitor with closed-loop dI/dt control, plus baselines.
``repro.pipeline``
    Parallel batch-characterization pipeline: declarative job specs, a
    stage registry, a multiprocessing executor and a content-addressed
    on-disk result cache.
"""

# Version first: repro.pipeline folds it into cache keys at import time.
__version__ = "1.0.0"

from . import core, errors, pipeline, power, stats, uarch, wavelets, workloads

__all__ = [
    "core",
    "errors",
    "pipeline",
    "power",
    "stats",
    "uarch",
    "wavelets",
    "workloads",
]

"""Programmatic access to every evaluation experiment in the paper.

Each ``figure*``/``table*`` function computes one figure or table's data
and returns a typed result; the benches under ``benchmarks/`` are thin
wrappers that print these results and assert the paper's shape claims.
Downstream users can regenerate any experiment directly:

    from repro.experiments import simulate_suite, figure9
    nets = {150: calibrated_supply(150)}
    traces = simulate_suite(cycles=32768)
    fig9 = figure9(calibrated_supply(150), traces)
    print(fig9.rms_error)

The heavy sweeps all route through :mod:`repro.pipeline`: every function
that simulates or runs closed-loop control takes ``jobs`` (worker
processes) and ``cache_dir`` (on-disk result cache) keyword arguments,
so a 26-benchmark figure parallelizes across cores and re-runs only
recompute invalidated jobs.  ``characterize_suite`` is the pipeline-
native Figure 9: benchmark names in, estimate-vs-truth out.

All functions are deterministic for fixed inputs and seeds, with or
without workers and caching.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from .core import (
    AnalogVoltageSensor,
    FullConvolutionMonitor,
    PipelineDampingController,
    ShiftRegisterMonitor,
    TracePrediction,
    WaveletVoltageEstimator,
    benchmark_voltage_histogram,
    coefficient_error_curve,
    gaussianity_study,
    predict_trace,
)
from .kernels import get_backend
from .obs import trace as obs
from .pipeline import (
    BatchOptions,
    JobSpec,
    build_characterization_jobs,
    build_control_jobs,
    control_results_from,
    predictions_from,
    submit,
)
from .power import PowerSupplyNetwork
from .stats import VoltageHistogram, study_windows
from .uarch import SimulationResult
from .workloads import SPEC2000, SPEC_INT

__all__ = [
    "PROBLEMATIC",
    "QUIET",
    "LOW_L2_MISS",
    "HIGH_L2_MISS",
    "ExperimentResult",
    "ExperimentResultBase",
    "simulate_suite",
    "characterize_suite",
    "Figure6Result",
    "figure6",
    "Figure7Result",
    "figure7",
    "Figure8Result",
    "figure8",
    "Figure9Result",
    "figure9",
    "Figure1011Result",
    "figures10_11",
    "Figure12Result",
    "figure12",
    "figure13",
    "Figure15Result",
    "figure15",
    "Table2Row",
    "table2",
]

@runtime_checkable
class ExperimentResult(Protocol):
    """What every figure/table result can do, regardless of its shape.

    The CLI, the JSONL observability writer and any future service layer
    serialize results through this one surface instead of knowing each
    dataclass: ``to_dict()`` is the full JSON-ready payload,
    ``summary()`` the flat dict of headline scalars.
    """

    def to_dict(self) -> dict: ...

    def summary(self) -> dict: ...


def _jsonify(value):
    """Recursively convert a result payload to JSON-ready types."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: _jsonify(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return fields
    if isinstance(value, dict):
        return {_json_key(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    if isinstance(value, range):
        return list(value)
    return value


def _json_key(key) -> str:
    """Dict keys as JSON strings; tuple keys join with ``:``."""
    if isinstance(key, tuple):
        return ":".join(str(k) for k in key)
    return str(key)


class ExperimentResultBase:
    """Shared :class:`ExperimentResult` implementation for the frozen
    per-figure dataclasses below."""

    def to_dict(self) -> dict:
        """The whole result as one JSON-ready dict."""
        return {
            "experiment": type(self).__name__,
            **_jsonify(self),
        }

    def summary(self) -> dict:
        """Headline scalars only; subclasses override with their own."""
        return {"experiment": type(self).__name__}


#: The paper's benchmark groupings (§4.2 and Figures 10/11).
PROBLEMATIC = ("mgrid", "gcc", "galgel", "apsi")
QUIET = ("vpr", "mcf", "equake", "gap")
LOW_L2_MISS = ("gzip", "mesa", "crafty", "eon")
HIGH_L2_MISS = ("swim", "lucas", "mcf", "art")


def _suite_of(name: str) -> str:
    return "int" if name in SPEC_INT else "fp"


def simulate_suite(
    cycles: int = 24576,
    names: tuple[str, ...] | None = None,
    jobs: int = 1,
    cache_dir: str | None = None,
) -> dict[str, SimulationResult]:
    """Current traces for the whole (or a subset of the) SPEC2000 suite.

    Runs through the batch pipeline: ``jobs`` worker processes simulate
    in parallel, and with ``cache_dir`` set the traces persist across
    processes and sessions.
    """
    names = tuple(SPEC2000) if names is None else names
    specs = [
        JobSpec(name, cycles=cycles, stages=("simulate",)) for name in names
    ]
    with obs.span(
        "experiment.simulate_suite", benchmarks=len(names), cycles=cycles
    ):
        batch = submit(specs, BatchOptions(jobs=jobs, cache_dir=cache_dir))
    return {
        o.spec.benchmark: o.artifacts["simulate"] for o in batch.outcomes
    }


def characterize_suite(
    network: PowerSupplyNetwork,
    names: tuple[str, ...] | None = None,
    cycles: int = 32768,
    threshold: float = 0.97,
    jobs: int = 1,
    cache_dir: str | None = None,
    seed: int | None = None,
) -> Figure9Result:
    """Figure 9 end to end through the pipeline: names in, result out.

    Equivalent to ``figure9(network, simulate_suite(cycles, names))`` but
    declarative — simulation, convolution truth and wavelet estimate run
    as cacheable pipeline stages across ``jobs`` workers.
    """
    names = tuple(SPEC2000) if names is None else names
    specs = build_characterization_jobs(
        names, network, cycles=cycles, threshold=threshold, seed=seed
    )
    with obs.span(
        "experiment.characterize_suite",
        benchmarks=len(names),
        cycles=cycles,
        threshold=threshold,
        kernel_backend=get_backend(),
    ):
        batch = submit(specs, BatchOptions(jobs=jobs, cache_dir=cache_dir))
    return Figure9Result(
        threshold=threshold, predictions=predictions_from(batch)
    )


# -- Figure 6 -----------------------------------------------------------------


@dataclass(frozen=True)
class Figure6Result(ExperimentResultBase):
    """Gaussian-window acceptance rates by suite and window size."""

    windows: tuple[int, ...]
    rates: dict[str, dict[int, float]]  # suite ("int"/"fp"/"all") -> size -> rate

    def summary(self) -> dict:
        return {
            "experiment": "figure6",
            **{
                f"acceptance_all_w{w}": self.rates["all"][w]
                for w in self.windows
            },
        }


def figure6(
    traces: dict[str, SimulationResult],
    windows: tuple[int, ...] = (32, 64, 128),
    samples_per_size: int = 80,
    seed: int = 7,
) -> Figure6Result:
    """χ² Gaussianity acceptance of random current windows (§4.1)."""
    per_suite: dict[str, dict[int, list[float]]] = {
        "int": {w: [] for w in windows},
        "fp": {w: [] for w in windows},
    }
    for name, result in traces.items():
        study = gaussianity_study(
            result, windows=windows, samples_per_size=samples_per_size,
            seed=seed,
        )
        for w in windows:
            per_suite[_suite_of(name)][w].append(study.acceptance_rate(w))
    rates: dict[str, dict[int, float]] = {}
    for suite in ("int", "fp"):
        rates[suite] = {
            w: float(np.mean(per_suite[suite][w])) for w in windows
        }
    rates["all"] = {
        w: float(np.mean(per_suite["int"][w] + per_suite["fp"][w]))
        for w in windows
    }
    return Figure6Result(windows=windows, rates=rates)


# -- Figure 7 -----------------------------------------------------------------


@dataclass(frozen=True)
class Figure7Result(ExperimentResultBase):
    """(non-Gaussian, overall) mean window variance per group and size."""

    windows: tuple[int, ...]
    rows: dict[int, dict[str, tuple[float, float]]]

    def summary(self) -> dict:
        out = {"experiment": "figure7"}
        for w in self.windows:
            non_gauss, overall = self.rows[w]["all"]
            out[f"variance_ratio_w{w}"] = (
                non_gauss / overall if overall else 0.0
            )
        return out


def figure7(
    traces: dict[str, SimulationResult],
    windows: tuple[int, ...] = (32, 64, 128),
    samples_per_size: int = 80,
    seed: int = 17,
) -> Figure7Result:
    """Current variance of non-Gaussian windows vs. overall (§4.1)."""
    rows: dict[int, dict[str, tuple[float, float]]] = {}
    for w in windows:
        rng = np.random.default_rng(seed)
        groups: dict[str, dict[str, list[float]]] = {
            key: {"non_gauss": [], "overall": []}
            for key in ("all", "non_resonant", "int", "fp")
        }
        for name, result in traces.items():
            study = study_windows(result.current, w, samples_per_size, rng)
            keys = ["all", _suite_of(name)]
            if name not in PROBLEMATIC:
                keys.append("non_resonant")
            for key in keys:
                groups[key]["overall"].append(study.overall_variance)
                if study.total > study.gaussian:
                    groups[key]["non_gauss"].append(
                        study.non_gaussian_variance
                    )
        rows[w] = {
            key: (
                float(np.mean(g["non_gauss"])) if g["non_gauss"] else 0.0,
                float(np.mean(g["overall"])),
            )
            for key, g in groups.items()
        }
    return Figure7Result(windows=windows, rows=rows)


# -- Figure 8 -----------------------------------------------------------------


@dataclass(frozen=True)
class Figure8Result(ExperimentResultBase):
    """Per-benchmark level-truncation errors."""

    variance_error: dict[str, float]  # relative error of the variance
    estimate_shift: dict[str, float]  # abs shift of the Fig-9 estimate
    kept_levels: dict[str, list[int]]

    def summary(self) -> dict:
        return {
            "experiment": "figure8",
            "benchmarks": len(self.variance_error),
            "max_variance_error": max(self.variance_error.values(), default=0.0),
            "max_estimate_shift": max(self.estimate_shift.values(), default=0.0),
        }


def figure8(
    network: PowerSupplyNetwork,
    traces: dict[str, SimulationResult],
    keep: int = 4,
    threshold: float = 0.97,
) -> Figure8Result:
    """Estimating voltage variance with ``keep`` of 8 levels (§4.1)."""
    full = WaveletVoltageEstimator(network)
    variance_error, estimate_shift, kept_levels = {}, {}, {}
    for name, result in traces.items():
        trace = result.current
        kept = full.top_levels_for(trace, keep)
        truncated = WaveletVoltageEstimator(
            network, keep_levels=kept, factors=full.factors
        )
        v_full = full.estimate_voltage_variance(trace)
        v_trunc = truncated.estimate_voltage_variance(trace)
        variance_error[name] = (
            abs(v_full - v_trunc) / v_full if v_full > 0 else 0.0
        )
        f_full = full.estimate_fraction_below(trace, threshold)
        f_trunc = truncated.estimate_fraction_below(trace, threshold)
        estimate_shift[name] = abs(f_full - f_trunc)
        kept_levels[name] = sorted(kept)
    return Figure8Result(
        variance_error=variance_error,
        estimate_shift=estimate_shift,
        kept_levels=kept_levels,
    )


# -- Figure 9 -----------------------------------------------------------------


@dataclass(frozen=True)
class Figure9Result(ExperimentResultBase):
    """Estimated vs. observed emergency exposure for the whole suite."""

    threshold: float
    predictions: dict[str, TracePrediction]

    def summary(self) -> dict:
        out = {
            "experiment": "figure9",
            "benchmarks": len(self.predictions),
            "threshold": self.threshold,
            "rms_error": self.rms_error,
        }
        if len(self.predictions) > 1:  # rank needs two points to mean anything
            out["rank_correlation"] = self.rank_correlation
        return out

    @property
    def rms_error(self) -> float:
        """Root-mean-square estimation error across benchmarks."""
        errs = np.array([p.error for p in self.predictions.values()])
        return float(np.sqrt(np.mean(errs**2)))

    @property
    def rank_correlation(self) -> float:
        """Spearman-style rank agreement between estimate and truth."""
        est = np.array([p.estimated for p in self.predictions.values()])
        obs = np.array([p.observed for p in self.predictions.values()])
        return float(
            np.corrcoef(
                np.argsort(np.argsort(est)), np.argsort(np.argsort(obs))
            )[0, 1]
        )


def figure9(
    network: PowerSupplyNetwork,
    traces: dict[str, SimulationResult],
    threshold: float = 0.97,
) -> Figure9Result:
    """The headline offline result (§4.2)."""
    estimator = WaveletVoltageEstimator(network)
    predictions = {
        name: predict_trace(network, result.current, threshold, name, estimator)
        for name, result in traces.items()
    }
    return Figure9Result(threshold=threshold, predictions=predictions)


# -- Figures 10/11 -------------------------------------------------------------


@dataclass(frozen=True)
class Figure1011Result(ExperimentResultBase):
    """Voltage histograms and nominal-voltage spikes per benchmark."""

    histograms: dict[str, VoltageHistogram]
    spike_ratios: dict[str, float]

    def summary(self) -> dict:
        return {
            "experiment": "figures10_11",
            "benchmarks": len(self.histograms),
            "max_spike_ratio": max(self.spike_ratios.values(), default=0.0),
        }


def figures10_11(
    network: PowerSupplyNetwork,
    traces: dict[str, SimulationResult],
    names: tuple[str, ...] = LOW_L2_MISS + HIGH_L2_MISS,
    bins: int = 30,
) -> Figure1011Result:
    """Voltage distributions by L2-miss class (§4.3)."""
    histograms = {
        name: benchmark_voltage_histogram(network, traces[name], bins=bins)
        for name in names
    }
    spikes = {
        name: hist.spike_ratio(network.vdd, 0.004)
        for name, hist in histograms.items()
    }
    return Figure1011Result(histograms=histograms, spike_ratios=spikes)


# -- Figure 12 -----------------------------------------------------------------


@dataclass(frozen=True)
class Figure12Result(ExperimentResultBase):
    """Per-benchmark 64-cycle current Gaussianity and L2 pressure."""

    rates: dict[str, float]
    l2_mpki: dict[str, float]

    def summary(self) -> dict:
        out = {"experiment": "figure12", "benchmarks": len(self.rates)}
        if len(self.rates) > 1:
            out["rank_correlation"] = self.rank_correlation
        return out

    @property
    def rank_correlation(self) -> float:
        """Rank correlation between L2 MPKI and Gaussianity (negative)."""
        m = np.array([self.l2_mpki[n] for n in self.rates])
        r = np.array([self.rates[n] for n in self.rates])
        return float(
            np.corrcoef(np.argsort(np.argsort(m)), np.argsort(np.argsort(r)))[
                0, 1
            ]
        )


def figure12(
    traces: dict[str, SimulationResult],
    samples_per_size: int = 120,
    seed: int = 7,
) -> Figure12Result:
    """Gaussianity vs. L2 misses across the suite (§4.3)."""
    rates, mpki = {}, {}
    for name, result in traces.items():
        study = gaussianity_study(
            result, windows=(64,), samples_per_size=samples_per_size,
            seed=seed,
        )
        rates[name] = study.acceptance_rate(64)
        mpki[name] = result.stats.l2_mpki
    return Figure12Result(rates=rates, l2_mpki=mpki)


# -- Figure 13 -----------------------------------------------------------------


def figure13(
    networks: dict[float, PowerSupplyNetwork],
    trace: np.ndarray,
    term_counts: list[int] | range = range(1, 31),
) -> dict[float, dict[int, float]]:
    """Monitor max error vs. wavelet term count per impedance (§5.1)."""
    return {
        pct: coefficient_error_curve(net, trace, term_counts)
        for pct, net in networks.items()
    }


# -- Figure 15 -----------------------------------------------------------------


@dataclass(frozen=True)
class Figure15Result(ExperimentResultBase):
    """Per-(impedance, benchmark) control outcomes."""

    results: dict[tuple[float, str], object]
    names: tuple[str, ...]

    def summary(self) -> dict:
        percents = sorted({pct for pct, _ in self.results})
        return {
            "experiment": "figure15",
            "benchmarks": len(self.names),
            **{
                f"mean_slowdown_{pct:g}pct": self.mean_slowdown(pct)
                for pct in percents
            },
        }

    def mean_slowdown(self, percent: float) -> float:
        """Average slowdown at one impedance point."""
        return float(
            np.mean(
                [self.results[(percent, n)].slowdown for n in self.names]
            )
        )


#: Figure-13-informed term counts per impedance point.
TERMS_FOR_PERCENT = {125.0: 9, 150.0: 13, 200.0: 20}


def figure15(
    networks: dict[float, PowerSupplyNetwork],
    names: tuple[str, ...],
    cycles: int = 10240,
    margin: float = 0.012,
    jobs: int = 1,
    cache_dir: str | None = None,
) -> Figure15Result:
    """Closed-loop wavelet control over the suite (§5.3).

    Every (impedance, benchmark) cell is an independent pipeline control
    job, so the sweep parallelizes across ``jobs`` workers.
    """
    specs, cells = [], []
    for pct, net in networks.items():
        terms = TERMS_FOR_PERCENT.get(pct, 13)
        specs.extend(
            build_control_jobs(
                names,
                net,
                scheme="wavelet",
                cycles=cycles,
                impedance=pct,
                terms=terms,
                margin=margin,
            )
        )
        cells.extend((pct, name) for name in names)
    with obs.span("experiment.figure15", cells=len(cells), cycles=cycles):
        batch = submit(specs, BatchOptions(jobs=jobs, cache_dir=cache_dir))
    results = dict(zip(cells, control_results_from(batch)))
    return Figure15Result(results=results, names=tuple(names))


# -- Table 2 -------------------------------------------------------------------


@dataclass(frozen=True)
class Table2Row(ExperimentResultBase):
    """Quantified Table-2 columns for one scheme."""

    scheme: str
    mean_slowdown: float
    max_slowdown: float
    false_positive_rate: float
    fault_reduction: float
    ops_per_cycle: int

    def summary(self) -> dict:
        return {
            "experiment": "table2",
            "scheme": self.scheme,
            "mean_slowdown": self.mean_slowdown,
            "fault_reduction": self.fault_reduction,
            "ops_per_cycle": self.ops_per_cycle,
        }


def table2(
    network: PowerSupplyNetwork,
    workloads: tuple[str, ...] = ("mgrid", "gcc", "gzip"),
    cycles: int = 10240,
    margin: float = 0.012,
    damping_delta: float = 6.0,
    jobs: int = 1,
    cache_dir: str | None = None,
) -> dict[str, Table2Row]:
    """All four dI/dt schemes, closed loop, side by side (§6).

    The scheme x workload grid runs as one pipeline batch; the
    controller for each cell is built declaratively inside the worker
    from the spec's ``scheme`` params.
    """
    schemes: dict[str, tuple[dict, int]] = {
        "analog": (
            {"scheme": "analog", "sensor_delay": 2, "margin": margin},
            AnalogVoltageSensor(network).ops_per_cycle,
        ),
        "full_conv": (
            {"scheme": "fullconv", "margin": margin},
            FullConvolutionMonitor(network).ops_per_cycle,
        ),
        "damping": (
            {
                "scheme": "damping",
                "damping_delta": damping_delta,
                "damping_window": 8,
            },
            PipelineDampingController(network, delta=damping_delta).ops_per_cycle,
        ),
        "wavelet": (
            {"scheme": "wavelet", "terms": 13, "margin": margin},
            ShiftRegisterMonitor(network, terms=13).adds_per_cycle,
        ),
    }
    specs, owners = [], []
    for scheme, (params, _) in schemes.items():
        kind = params["scheme"]
        extra = {k: v for k, v in params.items() if k != "scheme"}
        specs.extend(
            build_control_jobs(
                workloads, network, scheme=kind, cycles=cycles, **extra
            )
        )
        owners.extend(scheme for _ in workloads)
    batch = submit(specs, BatchOptions(jobs=jobs, cache_dir=cache_dir))
    per_scheme: dict[str, list] = {s: [] for s in schemes}
    for scheme, result in zip(owners, control_results_from(batch)):
        per_scheme[scheme].append(result)
    rows: dict[str, Table2Row] = {}
    for scheme, (_, ops) in schemes.items():
        slowdowns, fp_rates, fault_cuts = [], [], []
        for r in per_scheme[scheme]:
            slowdowns.append(r.slowdown)
            fp_rates.append(r.false_positive_rate)
            if r.baseline_faults:
                fault_cuts.append(1 - r.controlled_faults / r.baseline_faults)
        rows[scheme] = Table2Row(
            scheme=scheme,
            mean_slowdown=float(np.mean(slowdowns)),
            max_slowdown=float(np.max(slowdowns)),
            false_positive_rate=float(np.mean(fp_rates)),
            fault_reduction=float(np.mean(fault_cuts)) if fault_cuts else 1.0,
            ops_per_cycle=ops,
        )
    return rows

"""Vectorized backend: NumPy block implementations of the hot kernels.

Three ideas carry every speedup here:

* the periodized **Haar** transform is a strided reshape-and-sum — one
  ``(n/2, 2)`` view plus two elementwise ops per level, with the
  orthonormal ``2^{-j/2}`` scaling deferred to one multiply per output
  row instead of one per intermediate;
* anything done per 256-cycle window can be done for **every window of
  a trace at once** by tiling the trace into a ``(W, 256)`` matrix and
  running the same reshape trick along the last axis (all reductions
  are row-local, so each row's result is bit-identical to processing it
  alone — which is what keeps the streaming aggregators exact);
* the truncated wavelet monitor **is an FIR filter** with the compressed
  kernel ``IDWT(truncate(DWT(h)))``, so a whole trace is one
  direct-or-FFT convolution instead of a per-cycle decomposition.

Non-Haar bases fall back to the reference transform (the gather/matmul
path of :mod:`repro.wavelets.transform`): the paper's pipeline is
Haar-end-to-end, and a generic filter bank gains little from the
reshape trick.
"""

from __future__ import annotations

import numpy as np
from scipy.signal import convolve as _convolve

from ..wavelets.filters import Wavelet, get_wavelet
from ..wavelets.transform import max_level
from ..wavelets.transform import wavedec as _wavedec_direct
from ..wavelets.transform import waverec as _waverec_direct
from . import register_kernel
from .reference import WindowStats, check_traces_matrix, check_windows_matrix

_SQRT2 = np.sqrt(2.0)


def _is_haar(wavelet: str | Wavelet) -> bool:
    return get_wavelet(wavelet).name == "haar"


def _resolve_level(n: int, wavelet: str | Wavelet, level: int | None) -> int:
    limit = max_level(n, wavelet)
    if level is None:
        return limit
    if level < 0:
        raise ValueError("level must be non-negative")
    if level > limit:
        raise ValueError(
            f"level {level} too deep for signal of length {n} (max {limit})"
        )
    return level


@register_kernel("wavedec", "vectorized")
def wavedec(x, wavelet: str | Wavelet = "haar", level: int | None = None):
    """Haar multilevel DWT as reshape-and-sum with deferred scaling."""
    x = np.asarray(x, dtype=float)
    if x.ndim != 1:
        raise ValueError("expected a 1-D signal")
    if not _is_haar(wavelet):
        return _wavedec_direct(x, wavelet, level)
    level = _resolve_level(len(x), wavelet, level)
    details: list[np.ndarray] = []
    sums = x  # running pair sums; orthonormal scale applied per output row
    for j in range(1, level + 1):
        pairs = sums.reshape(-1, 2)
        even, odd = pairs[:, 0], pairs[:, 1]
        details.append((even - odd) * 2.0 ** (-j / 2.0))
        sums = even + odd
    return [sums * 2.0 ** (-level / 2.0)] + details[::-1]


@register_kernel("waverec", "vectorized")
def waverec(coeffs, wavelet: str | Wavelet = "haar"):
    """Inverse Haar DWT by interleaving sum/difference halves."""
    if not coeffs:
        raise ValueError("empty coefficient list")
    if not _is_haar(wavelet):
        return _waverec_direct(coeffs, wavelet)
    approx = np.asarray(coeffs[0], dtype=float)
    if approx.ndim != 1:
        raise ValueError("expected a 1-D signal")
    for det in coeffs[1:]:
        d = np.asarray(det, dtype=float)
        if d.shape != approx.shape:
            raise ValueError("approximation and detail must have equal length")
        out = np.empty(2 * approx.size)
        out[0::2] = approx + d
        out[1::2] = approx - d
        approx = out / _SQRT2
    return approx


def batched_haar_details(windows: np.ndarray, level: int):
    """Yield per-level orthonormal detail matrices for ``(W, N)`` rows.

    Level ``j``'s matrix has shape ``(W, N / 2**j)``; every reduction is
    along the last axis, so row ``k`` equals the 1-D transform of row
    ``k`` alone to float round-off.
    """
    sums = windows
    for j in range(1, level + 1):
        pairs = sums.reshape(sums.shape[0], -1, 2)
        even, odd = pairs[..., 0], pairs[..., 1]
        yield (even - odd) * 2.0 ** (-j / 2.0)
        sums = even + odd


def _batched_adjacent_correlation(details: np.ndarray) -> np.ndarray:
    """Row-wise lag-1 autocorrelation with the reference's guards."""
    count, m = details.shape
    if m < 3:
        return np.zeros(count)
    a, b = details[:, :-1], details[:, 1:]
    sa, sb = a.std(axis=1), b.std(axis=1)
    cov = ((a - a.mean(axis=1, keepdims=True))
           * (b - b.mean(axis=1, keepdims=True))).mean(axis=1)
    corr = np.zeros(count)
    ok = (sa != 0.0) & (sb != 0.0)
    corr[ok] = cov[ok] / (sa[ok] * sb[ok])
    return np.clip(corr, -1.0, 1.0)


@register_kernel("window_stats", "vectorized")
def window_stats(windows, level: int) -> WindowStats:
    """All windows of a trace in one 2-D pass (§4.1 steps 1-3, batched)."""
    w = check_windows_matrix(windows, level)
    count, n = w.shape
    variances = np.empty((level, count))
    correlations = np.empty((level, count))
    for j, details in enumerate(batched_haar_details(w, level), start=1):
        variances[j - 1] = np.sum(details**2, axis=1) / n
        correlations[j - 1] = _batched_adjacent_correlation(details)
    return WindowStats(
        means=w.mean(axis=1), variances=variances, correlations=correlations
    )


@register_kernel("gaussian_prob_below", "vectorized")
def gaussian_prob_below(means, variances, threshold: float) -> np.ndarray:
    """Emergency fraction for every window at once (§4.1 step 5)."""
    from scipy.special import erf

    m = np.asarray(means, dtype=float)
    v = np.asarray(variances, dtype=float)
    if m.shape != v.shape:
        raise ValueError("means and variances must have matching shapes")
    if np.any(v < 0.0):
        raise ValueError("variance must be non-negative")
    probs = np.empty(m.shape)
    degenerate = v == 0.0
    probs[degenerate] = (threshold > m[degenerate]).astype(float)
    live = ~degenerate
    z = (threshold - m[live]) / np.sqrt(v[live])
    probs[live] = 0.5 * (1.0 + erf(z / _SQRT2))
    return probs


@register_kernel("characterize_block", "vectorized")
def characterize_block(estimator, traces, threshold: float):
    """Per-trace vectorized passes over a stack (rows stay independent).

    The ``batched`` backend fuses the rows into one pass; this tier
    keeps the per-trace 2-D ``window_stats`` call, so it is the natural
    baseline the fused kernel's throughput is measured against.
    """
    t = check_traces_matrix(traces)
    probs_rows = []
    terms_rows = []
    for row in t:
        windows = estimator.tile_windows(row)
        stats = window_stats(windows, estimator.levels)
        mean_v, v_var = estimator.voltage_params_from(stats)
        probs_rows.append(gaussian_prob_below(mean_v, v_var, threshold))
        terms_rows.append(estimator.contribution_terms_from(stats))
    return np.stack(probs_rows), np.stack(terms_rows)


@register_kernel("convolver_apply", "vectorized")
def convolver_apply(convolver, x) -> np.ndarray:
    """The K-term subband convolution as one whole-trace FIR application.

    The retained terms reconstruct to a compressed impulse response
    (``IDWT(truncate(DWT(h)))``), so the §5.1 per-cycle inner product
    over a trace is exactly a causal convolution with that FIR —
    ``scipy.signal.convolve`` picks direct or FFT by size.
    """
    x = np.asarray(x, dtype=float)
    if x.size == 0:
        return np.empty(0)
    fir = convolver.compressed_fir()
    return _convolve(x, fir, method="auto")[: len(x)]


@register_kernel("monitor_estimate_trace", "vectorized")
def monitor_estimate_trace(monitor, current) -> np.ndarray:
    """Whole-trace voltage estimate via one compressed-kernel convolution."""
    i = np.asarray(current, dtype=float)
    if i.size == 0:
        return np.empty(0)
    droop = _convolve(i, monitor.compressed_kernel, method="auto")[: len(i)]
    return monitor.network.vdd - droop

"""Batched backend: fused multi-trace characterization + FFT convolution.

Two ideas define the tier above ``vectorized``:

* the §4.1 chain (wavedec → window stats → scale factors → Gaussian
  tail) is **row-local end to end**, so the windows of N traces can be
  stacked into one ``(N * W, window)`` matrix and pushed through a
  single strided-Haar pass — every per-trace Python/NumPy dispatch is
  amortized over the whole stack, and each row's result is bit-identical
  to characterizing its trace alone (which is what lets the pipeline
  split block results back into per-trace cache entries);
* whole-trace convolution switches from ``scipy.signal.convolve``'s
  generic auto mode to an explicit :func:`convolution_plan` crossover —
  direct for tiny problems, overlap-add (``oaconvolve``) when the trace
  dwarfs the compressed FIR (the common case: 32k-cycle traces against
  a few-hundred-tap kernel), one big FFT otherwise.

The numerically exact single-trace kernels (``wavedec``, ``waverec``,
``window_stats``, ``gaussian_prob_below``) are shared with the
vectorized backend: this tier changes how traces are *grouped* and how
convolutions are *planned*, not the per-window math.  The FFT paths are
the only kernels here that differ from ``vectorized`` beyond float
round-off (~1e-12 relative).

All batched math runs in float64: a float32 trace stack is upcast once
(exactly), so store-backed float32 traces produce the same bits as the
per-trace float64 path.
"""

from __future__ import annotations

import numpy as np
from scipy.signal import convolve as _direct_convolve
from scipy.signal import fftconvolve, oaconvolve

from . import register_kernel
from .reference import check_traces_matrix
from .vectorized import (
    gaussian_prob_below,
    wavedec,
    waverec,
    window_stats,
)

__all__ = ["convolution_plan"]

#: Below this ``n * m`` work product a direct convolution wins — the
#: FFT's setup cost dominates tiny problems.
DIRECT_LIMIT = 1 << 15

#: When one operand is at least this many times longer than the other,
#: overlap-add beats one big FFT by keeping each segment's transform at
#: ``O(m log m)`` instead of ``O(n log n)``.
OVERLAP_RATIO = 8


def convolution_plan(n: int, m: int) -> str:
    """The crossover heuristic: ``"direct"``, ``"fft"`` or ``"overlap_add"``.

    ``n`` and ``m`` are the operand lengths (order irrelevant).  Pure
    and deterministic so the choice is testable and shows up in docs
    rather than being buried in SciPy's auto mode.
    """
    if n <= 0 or m <= 0:
        return "direct"
    if n * m <= DIRECT_LIMIT:
        return "direct"
    if max(n, m) >= OVERLAP_RATIO * min(n, m):
        return "overlap_add"
    return "fft"


def _planned_convolve(x: np.ndarray, h: np.ndarray) -> np.ndarray:
    plan = convolution_plan(len(x), len(h))
    if plan == "direct":
        return _direct_convolve(x, h, method="direct")
    if plan == "overlap_add":
        return oaconvolve(x, h)
    return fftconvolve(x, h)


# Single-trace kernels shared with the vectorized backend verbatim.
register_kernel("wavedec", "batched")(wavedec)
register_kernel("waverec", "batched")(waverec)
register_kernel("window_stats", "batched")(window_stats)
register_kernel("gaussian_prob_below", "batched")(gaussian_prob_below)


@register_kernel("characterize_block", "batched")
def characterize_block(estimator, traces, threshold: float):
    """The §4.1 chain fused into one pass over an ``(N, cycles)`` stack.

    Tiles every trace's full windows into a single
    ``(N * W, window)`` matrix, runs one strided-Haar ``window_stats``
    pass, one factor lookup and one Gaussian-tail evaluation over all
    rows, then splits back per trace.  Returns ``(probs, terms)`` of
    shapes ``(N, W)`` and ``(N, levels, W)``; every reduction is
    row-local, so row ``k`` is bit-identical to the per-trace path.
    """
    t = check_traces_matrix(traces)
    n_traces, cycles = t.shape
    window = estimator.window
    count = cycles // window
    if count == 0:
        raise ValueError(f"traces shorter than one {window}-cycle window")
    stacked = t[:, : count * window].reshape(n_traces * count, window)
    stats = window_stats(stacked, estimator.levels)
    mean_v, v_var = estimator.voltage_params_from(stats)
    probs = gaussian_prob_below(mean_v, v_var, threshold)
    terms = estimator.contribution_terms_from(stats)
    return (
        probs.reshape(n_traces, count),
        np.ascontiguousarray(
            terms.reshape(estimator.levels, n_traces, count).swapaxes(0, 1)
        ),
    )


@register_kernel("convolver_apply", "batched")
def convolver_apply(convolver, x) -> np.ndarray:
    """K-term subband convolution via the planned FFT/overlap-add path."""
    x = np.asarray(x, dtype=float)
    if x.size == 0:
        return np.empty(0)
    fir = convolver.compressed_fir()
    return _planned_convolve(x, fir)[: len(x)]


@register_kernel("monitor_estimate_trace", "batched")
def monitor_estimate_trace(monitor, current) -> np.ndarray:
    """Whole-trace voltage estimate via the planned convolution."""
    i = np.asarray(current, dtype=float)
    if i.size == 0:
        return np.empty(0)
    droop = _planned_convolve(i, monitor.compressed_kernel)[: len(i)]
    return monitor.network.vdd - droop

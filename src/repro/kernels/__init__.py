"""Kernel-dispatch layer: one name, two interchangeable backends.

The paper's online monitor (§5) exists because per-cycle convolution is
too expensive; this package is the software mirror of that concern.  The
hot numerical inner loops of the reproduction — the Haar transform, the
per-window wavelet statistics of §4.1, the Gaussian emergency-fraction
evaluation, and the truncated subband convolution of §5.1 — each exist
twice:

* ``reference`` — the slow, obviously-correct scalar implementations
  (per-window loops, per-cycle dot products), kept as the oracle;
* ``vectorized`` — NumPy block implementations (strided reshape-and-sum
  wavelet transforms, one 2-D pass over every window of a trace, FIR/FFT
  convolution over whole traces).

Call sites go through :func:`get_kernel`, so the two backends stay
plug-compatible and ``tests/kernels/test_equivalence.py`` can assert
they agree on every registered kernel.  The default backend is
``vectorized``; set the ``REPRO_KERNEL_BACKEND`` environment variable or
pass ``--kernel-backend reference`` to any CLI command to fall back to
the scalar oracle when debugging numerics.

Kernel contract
---------------
A kernel is a pure function of its arguments registered under the same
name in **both** backends (the equivalence battery fails loudly on a
one-sided registration).  The registered signatures:

``wavedec(x, wavelet="haar", level=None)``
    Multilevel periodized DWT, ``[aJ, dJ, ..., d1]``.
``waverec(coeffs, wavelet="haar")``
    Inverse of ``wavedec``.
``window_stats(windows, level)``
    Per-row mean, per-scale wavelet variance and adjacent-coefficient
    correlation for a ``(W, N)`` matrix of current windows.
``gaussian_prob_below(means, variances, threshold)``
    Per-window Gaussian emergency fraction (§4.1 step 5).
``convolver_apply(convolver, x)``
    A :class:`~repro.wavelets.convolution.WaveletConvolver` run over a
    whole trace (truncated K-term subband convolution).
``monitor_estimate_trace(monitor, current)``
    A compressed-kernel voltage monitor run over a whole trace.

With observability on (``--obs``), every dispatched call is timed under
a ``kernel.<name>`` span tagged with its backend, so ``--obs summary``
attributes hot-path time kernel by kernel.
"""

from __future__ import annotations

import functools
import os
from contextlib import contextmanager

from ..obs import trace as obs

__all__ = [
    "DEFAULT_BACKEND",
    "WindowStats",
    "available_backends",
    "available_kernels",
    "get_backend",
    "get_kernel",
    "register_kernel",
    "set_backend",
    "use_backend",
]

#: Backend chosen when ``REPRO_KERNEL_BACKEND`` is unset.
DEFAULT_BACKEND = "vectorized"

_BACKENDS = ("reference", "vectorized")

#: name -> backend -> implementation
_REGISTRY: dict[str, dict[str, object]] = {}

_ACTIVE = os.environ.get("REPRO_KERNEL_BACKEND", DEFAULT_BACKEND)
if _ACTIVE not in _BACKENDS:  # pragma: no cover - env misconfiguration
    raise ValueError(
        f"REPRO_KERNEL_BACKEND={_ACTIVE!r} is not one of {_BACKENDS}"
    )


def available_backends() -> tuple[str, ...]:
    """The backend names kernels can register under."""
    return _BACKENDS


def available_kernels(backend: str | None = None) -> tuple[str, ...]:
    """Sorted kernel names; with ``backend``, only that backend's."""
    if backend is None:
        return tuple(sorted(_REGISTRY))
    _check_backend(backend)
    return tuple(
        sorted(n for n, impls in _REGISTRY.items() if backend in impls)
    )


def _check_backend(backend: str) -> None:
    if backend not in _BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {_BACKENDS}"
        )


def register_kernel(name: str, backend: str):
    """Decorator registering one backend's implementation of ``name``."""
    _check_backend(backend)

    def wrap(func):
        impls = _REGISTRY.setdefault(name, {})
        if backend in impls:
            raise ValueError(f"kernel {name!r} already has a {backend} impl")
        impls[backend] = func
        return func

    return wrap


def get_backend() -> str:
    """The currently active backend name."""
    return _ACTIVE


def set_backend(backend: str) -> None:
    """Select the process-wide backend for dynamically dispatched kernels."""
    global _ACTIVE
    _check_backend(backend)
    _ACTIVE = backend


@contextmanager
def use_backend(backend: str):
    """Temporarily switch the active backend (tests, A/B comparisons)."""
    previous = get_backend()
    set_backend(backend)
    try:
        yield
    finally:
        set_backend(previous)


def get_kernel(name: str, backend: str | None = None):
    """A callable for kernel ``name``.

    With ``backend=None`` (the normal call-site form) the returned
    callable re-resolves the active backend on **every call**, so
    :func:`set_backend`/:func:`use_backend` affect kernels fetched
    earlier.  With an explicit backend it is pinned to that
    implementation.  Either way the call is wrapped in a
    ``kernel.<name>`` tracing span when observability is enabled.
    """
    impls = _kernel_impls(name)
    if backend is not None:
        _check_backend(backend)
        try:
            impl = impls[backend]
        except KeyError:
            raise ValueError(
                f"kernel {name!r} has no {backend!r} implementation"
            ) from None
        return _spanned(name, backend, impl)
    return _dispatcher(name)


def _kernel_impls(name: str) -> dict[str, object]:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel {name!r}; available: {list(available_kernels())}"
        ) from None


def _spanned(name: str, backend: str, impl):
    @functools.wraps(impl)
    def call(*args, **kwargs):
        if obs.ENABLED:
            with obs.span(f"kernel.{name}", backend=backend):
                return impl(*args, **kwargs)
        return impl(*args, **kwargs)

    return call


@functools.lru_cache(maxsize=None)
def _dispatcher(name: str):
    def call(*args, **kwargs):
        backend = _ACTIVE
        impl = _REGISTRY[name].get(backend)
        if impl is None:
            raise ValueError(
                f"kernel {name!r} has no {backend!r} implementation"
            )
        if obs.ENABLED:
            with obs.span(f"kernel.{name}", backend=backend):
                return impl(*args, **kwargs)
        return impl(*args, **kwargs)

    call.__name__ = call.__qualname__ = f"kernel:{name}"
    return call


# Importing the backends registers every kernel; WindowStats is part of
# the public window_stats contract.
from .reference import WindowStats  # noqa: E402
from . import reference, vectorized  # noqa: E402,F401

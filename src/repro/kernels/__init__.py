"""Kernel-dispatch layer: one name, interchangeable backends.

The paper's online monitor (§5) exists because per-cycle convolution is
too expensive; this package is the software mirror of that concern.  The
hot numerical inner loops of the reproduction — the Haar transform, the
per-window wavelet statistics of §4.1, the Gaussian emergency-fraction
evaluation, and the truncated subband convolution of §5.1 — exist in
three tiers:

* ``reference`` — the slow, obviously-correct scalar implementations
  (per-window loops, per-cycle dot products), kept as the oracle;
* ``vectorized`` — NumPy block implementations (strided reshape-and-sum
  wavelet transforms, one 2-D pass over every window of a trace, FIR/FFT
  convolution over whole traces);
* ``batched`` — multi-trace implementations: the §4.1 chain fused into
  one pass over an ``(N_traces, cycles)`` stack, and FFT/overlap-add
  convolution with an automatic crossover heuristic.

Call sites go through :func:`get_kernel`, so the backends stay
plug-compatible and ``tests/kernels/test_equivalence.py`` can assert
they agree on every registered kernel.

Backend selection
-----------------
One object, :class:`KernelConfig`, owns backend selection.  Resolution
order (first hit wins):

1. an explicit ``backend=`` argument to :func:`get_kernel` /
   :func:`resolve_kernel`;
2. the innermost active ``with KernelConfig(backend=...):`` context;
3. the process-wide config installed by ``KernelConfig(...).activate()``;
4. the ``REPRO_KERNEL_BACKEND`` environment variable (read live);
5. :data:`DEFAULT_BACKEND` (``vectorized``).

The older ``set_backend`` / ``use_backend`` entry points remain as thin
shims that emit :class:`DeprecationWarning` and delegate to
:class:`KernelConfig`.

A kernel registered one-sided falls back along the chain
``batched → vectorized → reference``; the fallback is explicit in
:func:`resolve_kernel`'s return value and logged once per
(kernel, backend) pair.  Pinning an explicit backend never falls back —
a missing implementation raises.

Kernel contract
---------------
A kernel is a pure function of its arguments registered under the same
name in **every** backend (the equivalence battery fails loudly on a
one-sided registration).  The registered signatures:

``wavedec(x, wavelet="haar", level=None)``
    Multilevel periodized DWT, ``[aJ, dJ, ..., d1]``.
``waverec(coeffs, wavelet="haar")``
    Inverse of ``wavedec``.
``window_stats(windows, level)``
    Per-row mean, per-scale wavelet variance and adjacent-coefficient
    correlation for a ``(W, N)`` matrix of current windows.
``gaussian_prob_below(means, variances, threshold)``
    Per-window Gaussian emergency fraction (§4.1 step 5).
``convolver_apply(convolver, x)``
    A :class:`~repro.wavelets.convolution.WaveletConvolver` run over a
    whole trace (truncated K-term subband convolution).
``monitor_estimate_trace(monitor, current)``
    A compressed-kernel voltage monitor run over a whole trace.
``characterize_block(estimator, traces, threshold)``
    The full §4.1 chain over an ``(N_traces, cycles)`` stack, returning
    per-trace probability and contribution-term matrices.

With observability on (``--obs``), every dispatched call is timed under
a ``kernel.<name>`` span tagged with the backend actually used, so
``--obs summary`` attributes hot-path time kernel by kernel.
"""

from __future__ import annotations

import functools
import logging
import os
import warnings
from dataclasses import dataclass

from ..obs import trace as obs

__all__ = [
    "DEFAULT_BACKEND",
    "KernelConfig",
    "WindowStats",
    "available_backends",
    "available_kernels",
    "get_backend",
    "get_kernel",
    "register_kernel",
    "resolve_backend",
    "resolve_kernel",
    "set_backend",
    "use_backend",
]

#: Backend chosen when nothing else selects one.
DEFAULT_BACKEND = "vectorized"

#: Environment variable consulted (live) by :func:`resolve_backend`.
ENV_VAR = "REPRO_KERNEL_BACKEND"

_BACKENDS = ("reference", "vectorized", "batched")

#: name -> backend -> implementation
_REGISTRY: dict[str, dict[str, object]] = {}

#: One-sided registrations resolve down this chain (never up).
_FALLBACK_CHAIN = {"batched": "vectorized", "vectorized": "reference"}

_log = logging.getLogger(__name__)
_warned_fallbacks: set[tuple[str, str]] = set()


def available_backends() -> tuple[str, ...]:
    """The backend names kernels can register under."""
    return _BACKENDS


def available_kernels(backend: str | None = None) -> tuple[str, ...]:
    """Sorted kernel names; with ``backend``, only that backend's."""
    if backend is None:
        return tuple(sorted(_REGISTRY))
    _check_backend(backend)
    return tuple(
        sorted(n for n, impls in _REGISTRY.items() if backend in impls)
    )


def _check_backend(backend: str) -> None:
    if backend not in _BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {_BACKENDS}"
        )


def register_kernel(name: str, backend: str):
    """Decorator registering one backend's implementation of ``name``."""
    _check_backend(backend)

    def wrap(func):
        impls = _REGISTRY.setdefault(name, {})
        if backend in impls:
            raise ValueError(f"kernel {name!r} already has a {backend} impl")
        impls[backend] = func
        return func

    return wrap


@dataclass(frozen=True)
class KernelConfig:
    """Backend selection as a value: context manager or process default.

    ``backend=None`` means "inherit" — entering such a config changes
    nothing.  Use as a scoped override::

        with KernelConfig(backend="reference"):
            ...  # dynamically dispatched kernels use the oracle

    or install process-wide (what ``--kernel-backend`` does)::

        KernelConfig(backend="batched").activate()

    Resolution order: explicit ``backend=`` argument > innermost active
    context > process config > ``REPRO_KERNEL_BACKEND`` > the default.
    """

    backend: str | None = None

    def __post_init__(self) -> None:
        if self.backend is not None:
            _check_backend(self.backend)

    def __enter__(self) -> KernelConfig:
        _STACK.append(self)
        return self

    def __exit__(self, *exc) -> bool:
        _STACK.pop()
        return False

    def activate(self) -> KernelConfig:
        """Install as the process-wide config (below any active context)."""
        global _PROCESS
        _PROCESS = self
        return self


_STACK: list[KernelConfig] = []
_PROCESS: KernelConfig | None = None


def resolve_backend(explicit: str | None = None) -> str:
    """The backend the next dynamic dispatch would use.

    Applies the documented resolution order; raises ``ValueError`` on an
    unknown explicit name or a misconfigured environment variable.
    """
    if explicit is not None:
        _check_backend(explicit)
        return explicit
    for config in reversed(_STACK):
        if config.backend is not None:
            return config.backend
    if _PROCESS is not None and _PROCESS.backend is not None:
        return _PROCESS.backend
    env = os.environ.get(ENV_VAR)
    if env:
        if env not in _BACKENDS:
            raise ValueError(f"{ENV_VAR}={env!r} is not one of {_BACKENDS}")
        return env
    return DEFAULT_BACKEND


def get_backend() -> str:
    """The currently active backend name (alias of :func:`resolve_backend`)."""
    return resolve_backend()


def set_backend(backend: str) -> None:
    """Deprecated: use ``KernelConfig(backend=...).activate()``."""
    warnings.warn(
        "set_backend() is deprecated; use "
        "KernelConfig(backend=...).activate()",
        DeprecationWarning,
        stacklevel=2,
    )
    KernelConfig(backend=backend).activate()


def use_backend(backend: str) -> KernelConfig:
    """Deprecated: use ``with KernelConfig(backend=...):``."""
    warnings.warn(
        "use_backend() is deprecated; use "
        "with KernelConfig(backend=...): ...",
        DeprecationWarning,
        stacklevel=2,
    )
    return KernelConfig(backend=backend)


def get_kernel(name: str, backend: str | None = None):
    """A callable for kernel ``name``.

    With ``backend=None`` (the normal call-site form) the returned
    callable re-resolves the active backend on **every call**, so
    :class:`KernelConfig` contexts affect kernels fetched earlier, and a
    one-sided registration falls back down the chain (logged once).
    With an explicit backend it is pinned to that exact implementation —
    no fallback; a missing implementation raises.  Either way the call
    is wrapped in a ``kernel.<name>`` tracing span when observability is
    enabled.
    """
    impls = _kernel_impls(name)
    if backend is not None:
        _check_backend(backend)
        try:
            impl = impls[backend]
        except KeyError:
            raise ValueError(
                f"kernel {name!r} has no {backend!r} implementation"
            ) from None
        return _spanned(name, backend, impl)
    return _dispatcher(name)


def resolve_kernel(name: str, backend: str | None = None):
    """Resolve ``name`` right now, fallback included: ``(impl, backend)``.

    Unlike :func:`get_kernel` this makes the fallback explicit in the
    return value: the second element is the backend that will actually
    run, which differs from the requested/active one when the kernel is
    registered one-sided.  The resolution is a snapshot — later
    :class:`KernelConfig` changes do not affect the returned callable.
    """
    impls = _kernel_impls(name)
    requested = resolve_backend(backend)
    impl, used = _resolve_impl(name, impls, requested)
    return _spanned(name, used, impl), used


def _kernel_impls(name: str) -> dict[str, object]:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel {name!r}; available: {list(available_kernels())}"
        ) from None


def _resolve_impl(name: str, impls: dict[str, object], requested: str):
    used: str | None = requested
    while used is not None:
        impl = impls.get(used)
        if impl is not None:
            if used != requested:
                _note_fallback(name, requested, used)
            return impl, used
        used = _FALLBACK_CHAIN.get(used)
    raise ValueError(f"kernel {name!r} has no {requested!r} implementation")


def _note_fallback(name: str, requested: str, used: str) -> None:
    key = (name, requested)
    if key in _warned_fallbacks:
        return
    _warned_fallbacks.add(key)
    _log.warning(
        "kernel %r has no %r implementation; falling back to %r",
        name,
        requested,
        used,
    )


def _spanned(name: str, backend: str, impl):
    @functools.wraps(impl)
    def call(*args, **kwargs):
        if obs.ENABLED:
            with obs.span(f"kernel.{name}", backend=backend):
                return impl(*args, **kwargs)
        return impl(*args, **kwargs)

    return call


@functools.lru_cache(maxsize=None)
def _dispatcher(name: str):
    def call(*args, **kwargs):
        impl, backend = _resolve_impl(name, _REGISTRY[name], resolve_backend())
        if obs.ENABLED:
            with obs.span(f"kernel.{name}", backend=backend):
                return impl(*args, **kwargs)
        return impl(*args, **kwargs)

    call.__name__ = call.__qualname__ = f"kernel:{name}"
    return call


# Importing the backends registers every kernel; WindowStats is part of
# the public window_stats contract.
from .reference import WindowStats  # noqa: E402
from . import reference, vectorized, batched  # noqa: E402,F401

"""Reference backend: the scalar implementations, kept as the oracle.

Every kernel here is either the original call path (wrapped) or a
straightforward per-window / per-cycle loop whose accumulation order
mirrors the pre-dispatch code exactly.  Nothing in this module is meant
to be fast — it is meant to be obviously correct, so the vectorized
backend has something unambiguous to be tested against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..wavelets import adjacent_correlation, decompose
from ..wavelets.filters import Wavelet
from ..wavelets.transform import wavedec as _wavedec_direct
from ..wavelets.transform import waverec as _waverec_direct
from . import register_kernel

__all__ = ["WindowStats"]


@dataclass(frozen=True)
class WindowStats:
    """Per-window §4.1 statistics for a ``(W, N)`` matrix of windows.

    ``variances[j - 1, k]`` and ``correlations[j - 1, k]`` are the
    level-``j`` wavelet variance and adjacent-coefficient correlation of
    window ``k``; ``means[k]`` is its mean current.  Levels are numbered
    like :mod:`repro.wavelets.transform` (1 = finest detail).
    """

    means: np.ndarray  # (W,)
    variances: np.ndarray  # (level, W)
    correlations: np.ndarray  # (level, W)

    @property
    def level(self) -> int:
        """Number of decomposition levels."""
        return self.variances.shape[0]

    @property
    def windows(self) -> int:
        """Number of windows characterized."""
        return self.means.shape[0]


def check_windows_matrix(windows: np.ndarray, level: int) -> np.ndarray:
    """Shared validation for ``window_stats``: a float ``(W, N)`` matrix."""
    w = np.asarray(windows, dtype=float)
    if w.ndim != 2:
        raise ValueError("windows must be a 2-D (count, window) matrix")
    if level < 0:
        raise ValueError("level must be non-negative")
    n = w.shape[1]
    if level and (n % (1 << level) != 0):
        raise ValueError(
            f"window length {n} does not admit {level} dyadic levels"
        )
    return w


def check_traces_matrix(traces) -> np.ndarray:
    """Shared validation for ``characterize_block``: a float ``(N, cycles)``
    matrix.  Ragged inputs (traces of unequal length) are rejected —
    block grouping only ever stacks same-shape traces."""
    try:
        t = np.asarray(traces, dtype=float)
    except ValueError as exc:
        raise ValueError(
            "traces must be a rectangular (n_traces, cycles) matrix"
        ) from exc
    if t.ndim != 2:
        raise ValueError("traces must be a 2-D (n_traces, cycles) matrix")
    return t


@register_kernel("wavedec", "reference")
def wavedec(x, wavelet: str | Wavelet = "haar", level: int | None = None):
    """The original per-level transform of :mod:`repro.wavelets.transform`."""
    return _wavedec_direct(x, wavelet, level)


@register_kernel("waverec", "reference")
def waverec(coeffs, wavelet: str | Wavelet = "haar"):
    """The original per-level inverse transform."""
    return _waverec_direct(coeffs, wavelet)


@register_kernel("window_stats", "reference")
def window_stats(windows, level: int) -> WindowStats:
    """One decomposition per window, exactly as ``characterize_window``."""
    w = check_windows_matrix(windows, level)
    count, n = w.shape
    means = np.empty(count)
    variances = np.empty((level, count))
    correlations = np.empty((level, count))
    for k in range(count):
        dec = decompose(w[k], "haar", level)
        means[k] = float(w[k].mean())
        for lvl in range(1, level + 1):
            det = dec.detail(lvl)
            variances[lvl - 1, k] = float(np.sum(det**2)) / n
            correlations[lvl - 1, k] = adjacent_correlation(det)
    return WindowStats(means=means, variances=variances, correlations=correlations)


@register_kernel("gaussian_prob_below", "reference")
def gaussian_prob_below(means, variances, threshold: float) -> np.ndarray:
    """One :class:`~repro.stats.GaussianModel` CDF evaluation per window."""
    from ..stats import GaussianModel

    m = np.asarray(means, dtype=float)
    v = np.asarray(variances, dtype=float)
    if m.shape != v.shape:
        raise ValueError("means and variances must have matching shapes")
    return np.array(
        [
            GaussianModel(float(mean), float(var)).prob_below(threshold)
            for mean, var in zip(m.ravel(), v.ravel())
        ]
    ).reshape(m.shape)


@register_kernel("characterize_block", "reference")
def characterize_block(estimator, traces, threshold: float):
    """One trace at a time through the scalar kernels — the block oracle.

    Returns ``(probs, terms)`` of shapes ``(N, W)`` and
    ``(N, levels, W)``: exactly what running each trace alone through
    ``window_stats`` → factor lookup → ``gaussian_prob_below`` yields.
    """
    t = check_traces_matrix(traces)
    probs_rows = []
    terms_rows = []
    for row in t:
        windows = estimator.tile_windows(row)
        stats = window_stats(windows, estimator.levels)
        mean_v, v_var = estimator.voltage_params_from(stats)
        probs_rows.append(gaussian_prob_below(mean_v, v_var, threshold))
        terms_rows.append(estimator.contribution_terms_from(stats))
    return np.stack(probs_rows), np.stack(terms_rows)


@register_kernel("convolver_apply", "reference")
def convolver_apply(convolver, x) -> np.ndarray:
    """Per-cycle truncated wavelet-domain evaluation (the §5.1 loop).

    Re-decomposes the history window every cycle and sums the retained
    ``<DWT(u), DWT(h)>`` terms — the original ``WaveletConvolver.apply``.
    """
    x = np.asarray(x, dtype=float)
    padded = np.concatenate([np.zeros(convolver.window - 1), x])
    out = np.empty(len(x))
    for t in range(len(x)):
        window = padded[t : t + convolver.window][::-1]
        out[t] = convolver.evaluate(window)
    return out


@register_kernel("monitor_estimate_trace", "reference")
def monitor_estimate_trace(monitor, current) -> np.ndarray:
    """The streaming ``observe`` loop, replayed from a zeroed history.

    Does not touch ``monitor``'s live streaming state; like the batch
    interface it answers "what would a freshly-reset monitor emit".
    """
    i = np.asarray(current, dtype=float)
    kernel = monitor.compressed_kernel
    history = np.zeros(monitor.taps)
    out = np.empty(len(i))
    for t in range(len(i)):
        history[1:] = history[:-1]
        history[0] = i[t]
        out[t] = monitor.network.vdd - float(np.dot(history, kernel))
    return out

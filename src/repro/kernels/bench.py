"""Reproducible kernel benchmarks: reference vs. vectorized, timed.

``repro bench`` runs every registered kernel on representative inputs —
synthetic traces for the transforms, simulated workload traces for the
window statistics and monitors, and a whole characterization batch for
the end-to-end number — under both backends, and writes the results to
``BENCH_kernels.json``.  Each timing is the best of several repeats
(minimum wall time is the standard estimator for a noisy machine), and
every kernel row also records the max absolute difference between the
two backends' outputs, so a benchmark run doubles as a coarse
equivalence check.

``--quick`` shrinks sizes and repeats to CI-smoke scale (a few seconds);
the full run sizes inputs to the paper's regime (1M-cycle traces, the
26-benchmark suite) where the headline targets — >= 10x on ``wavedec``,
>= 5x on end-to-end characterization — are measured.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from ..obs import trace as obs
from . import KernelConfig, available_kernels, get_kernel

__all__ = ["run_bench", "format_results", "DEFAULT_OUTPUT"]

#: Default result path, relative to the current directory (repo root).
DEFAULT_OUTPUT = "BENCH_kernels.json"

#: Input sizing per mode: (full, quick).
_SIZES = {
    "wavedec_n": (1 << 20, 1 << 16),
    "stats_cycles": (1 << 17, 1 << 14),
    "gaussian_n": (1 << 16, 1 << 12),
    "convolver_n": (1 << 14, 1 << 12),
    "monitor_n": (1 << 16, 1 << 13),
    "block_traces": (8, 3),
    "block_cycles": (1 << 14, 1 << 12),
    "batch_benchmarks": (26, 4),
    "batch_cycles": (1 << 15, 1 << 13),
    "obs_benchmarks": (4, 2),
    "obs_cycles": (1 << 14, 1 << 12),
    "repeats": (5, 2),
}

#: The obs off-path overhead budget: instrumented code with
#: observability disabled must stay within this of fully stripped
#: instrumentation (see ``_bench_obs_overhead``).
OBS_OVERHEAD_BUDGET_PCT = 5.0


def _size(key: str, quick: bool) -> int:
    full, small = _SIZES[key]
    return small if quick else full


def _best_of(fn, repeats: int) -> float:
    """Minimum wall time of ``repeats`` calls (first call included)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _flatten(result) -> np.ndarray:
    """Any kernel output as one flat float array (for diffing backends)."""
    if isinstance(result, np.ndarray):
        return result.ravel()
    if isinstance(result, (list, tuple)):
        return np.concatenate([np.asarray(part).ravel() for part in result])
    # WindowStats
    return np.concatenate(
        [result.means, result.variances.ravel(), result.correlations.ravel()]
    )


def _time_pair(name: str, call_args, repeats: int) -> dict:
    """Time one kernel under both backends and diff the outputs."""
    args, kwargs = call_args
    ref = get_kernel(name, backend="reference")
    vec = get_kernel(name, backend="vectorized")
    with obs.span(f"bench.{name}", repeats=repeats):
        ref_out = ref(*args, **kwargs)
        vec_out = vec(*args, **kwargs)
        ref_s = _best_of(lambda: ref(*args, **kwargs), repeats)
        vec_s = _best_of(lambda: vec(*args, **kwargs), repeats)
    diff = float(np.max(np.abs(_flatten(ref_out) - _flatten(vec_out)))) \
        if _flatten(ref_out).size else 0.0
    return {
        "reference_s": ref_s,
        "vectorized_s": vec_s,
        "speedup": ref_s / vec_s if vec_s > 0 else float("inf"),
        "repeats": repeats,
        "max_abs_diff": diff,
    }


def _synthetic_trace(n: int, seed: int = 2004) -> np.ndarray:
    """A current-like trace: DC level, program phases, cycle noise."""
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    phases = 8.0 * np.sin(2 * np.pi * t / 4096.0)
    return 40.0 + phases + rng.normal(0.0, 5.0, n)


def _workload_trace(cycles: int):
    from ..uarch import simulate_benchmark

    return simulate_benchmark("gcc", cycles=cycles).current


def _kernel_cases(quick: bool, network) -> dict:
    """Input builders per kernel: name -> (args, kwargs)."""
    from ..core import WaveletVoltageEstimator, WaveletVoltageMonitor
    from ..wavelets import WaveletConvolver
    from ..power import impulse_response

    n = _size("wavedec_n", quick)
    trace = _synthetic_trace(n)
    coeffs = get_kernel("wavedec", backend="reference")(trace, "haar")

    stats_trace = _workload_trace(_size("stats_cycles", quick))
    windows = stats_trace[: len(stats_trace) // 256 * 256].reshape(-1, 256)

    g_n = _size("gaussian_n", quick)
    rng = np.random.default_rng(7)
    means = 1.0 - rng.uniform(0.0, 0.06, g_n)
    variances = rng.uniform(0.0, 4e-4, g_n)
    variances[:: 17] = 0.0  # exercise the degenerate branch too

    monitor = WaveletVoltageMonitor(network, terms=13)
    convolver = WaveletConvolver(
        impulse_response(network, monitor.taps), "haar", keep=13
    )
    conv_trace = _synthetic_trace(_size("convolver_n", quick), seed=5)
    mon_trace = _synthetic_trace(_size("monitor_n", quick), seed=6)

    estimator = WaveletVoltageEstimator(network)
    block = np.stack(
        [
            _synthetic_trace(_size("block_cycles", quick), seed=10 + i)
            for i in range(_size("block_traces", quick))
        ]
    )

    return {
        "characterize_block": ((estimator, block, 0.97), {}),
        "wavedec": ((trace, "haar"), {}),
        "waverec": ((coeffs, "haar"), {}),
        "window_stats": ((windows, 8), {}),
        "gaussian_prob_below": ((means, variances, 0.97), {}),
        "convolver_apply": ((convolver, conv_trace), {}),
        "monitor_estimate_trace": ((monitor, mon_trace), {}),
    }


def _bench_characterize_batch(quick: bool, network, repeats: int) -> dict:
    """End-to-end §4.1 characterization of a benchmark batch, per backend."""
    from ..core import WaveletVoltageEstimator
    from ..uarch import simulate_benchmark
    from ..workloads import SPEC2000

    count = _size("batch_benchmarks", quick)
    cycles = _size("batch_cycles", quick)
    names = tuple(sorted(SPEC2000))[:count]
    traces = [
        simulate_benchmark(name, cycles=cycles).current for name in names
    ]
    estimator = WaveletVoltageEstimator(network)

    def run_all():
        return [
            estimator.estimate_fraction_below(trace, 0.97)
            for trace in traces
        ]

    with obs.span(
        "bench.characterize_batch", benchmarks=count, cycles=cycles
    ):
        with KernelConfig(backend="reference"):
            ref_out = run_all()
            ref_s = _best_of(run_all, max(1, repeats - 3))
        with KernelConfig(backend="vectorized"):
            vec_out = run_all()
            vec_s = _best_of(run_all, repeats)
    return {
        "reference_s": ref_s,
        "vectorized_s": vec_s,
        "speedup": ref_s / vec_s if vec_s > 0 else float("inf"),
        "benchmarks": count,
        "cycles": cycles,
        "max_abs_diff": float(
            np.max(np.abs(np.array(ref_out) - np.array(vec_out)))
        ),
    }


def _bench_throughput(quick: bool, network, repeats: int) -> dict:
    """End-to-end characterize throughput in traces/sec, three ways.

    ``characterize`` times the kernel layer directly: a vectorized
    per-trace ``estimate_fraction_below`` loop against one fused
    ``estimate_traces`` call on the batched backend — the tier-2 gate
    metric (``batched_speedup`` must stay >= 1).  ``pipeline_block``
    times the dispatch layer: the same specs submitted with block
    fusion off and on (both under the batched backend, simulator memo
    warm), isolating what block dispatch itself buys end to end.
    """
    from ..core import WaveletVoltageEstimator
    from ..pipeline import BatchOptions, build_characterization_jobs, submit
    from ..uarch import simulate_benchmark
    from ..workloads import SPEC2000

    count = _size("batch_benchmarks", quick)
    cycles = _size("batch_cycles", quick)
    names = tuple(sorted(SPEC2000))[:count]
    traces = np.stack(
        [simulate_benchmark(name, cycles=cycles).current for name in names]
    )
    estimator = WaveletVoltageEstimator(network)

    def per_trace():
        return [
            estimator.estimate_fraction_below(trace, 0.97)
            for trace in traces
        ]

    def fused():
        return estimator.estimate_traces(traces, 0.97)

    with obs.span("bench.throughput", traces=count, cycles=cycles):
        with KernelConfig(backend="vectorized"):
            vec_out = per_trace()
            vec_s = _best_of(per_trace, repeats)
        with KernelConfig(backend="batched"):
            fused_out = fused()
            fused_s = _best_of(fused, repeats)

        specs = build_characterization_jobs(names, network, cycles=cycles)
        base = BatchOptions(kernels=KernelConfig(backend="batched"))
        pipeline_repeats = max(1, repeats - 3)

        def run_single():
            submit(specs, base.with_(block="never"))

        def run_blocks():
            submit(specs, base.with_(block="always"))

        run_single()  # warm the simulator memo for both paths
        single_s = _best_of(run_single, pipeline_repeats)
        block_s = _best_of(run_blocks, pipeline_repeats)

    return {
        "characterize": {
            "traces": count,
            "cycles": cycles,
            "repeats": repeats,
            "vectorized_traces_per_s": count / vec_s if vec_s > 0 else float("inf"),
            "batched_traces_per_s": count / fused_s if fused_s > 0 else float("inf"),
            "batched_speedup": vec_s / fused_s if fused_s > 0 else float("inf"),
            "max_abs_diff": float(
                np.max(np.abs(np.asarray(vec_out) - fused_out))
            ),
        },
        "pipeline_block": {
            "traces": count,
            "cycles": cycles,
            "repeats": pipeline_repeats,
            "per_trace_traces_per_s": count / single_s if single_s > 0 else float("inf"),
            "block_traces_per_s": count / block_s if block_s > 0 else float("inf"),
            "block_speedup": single_s / block_s if block_s > 0 else float("inf"),
        },
    }


def _bench_obs_overhead(quick: bool, network, repeats: int) -> dict:
    """Cost of the disabled-observability fast path on a characterize run.

    Every instrumentation site pays one module-attribute load plus an
    ``ENABLED`` branch when observability is off.  This measures a small
    characterization batch twice — once on the normal off path, once
    with every obs helper monkeypatched to a bare no-op (the closest
    runnable stand-in for "no instrumentation at all") — and reports the
    relative overhead.  The budget is :data:`OBS_OVERHEAD_BUDGET_PCT`;
    the slow bench test and CI gate on the recorded number.
    """
    from ..core import WaveletVoltageEstimator
    from ..uarch import simulate_benchmark
    from ..workloads import SPEC2000

    count = _size("obs_benchmarks", quick)
    cycles = _size("obs_cycles", quick)
    names = tuple(sorted(SPEC2000))[:count]
    traces = [
        simulate_benchmark(name, cycles=cycles).current for name in names
    ]
    estimator = WaveletVoltageEstimator(network)

    def run_all():
        for trace in traces:
            estimator.estimate_fraction_below(trace, 0.97)

    # the off path: real helpers, ENABLED False
    was_enabled = obs.ENABLED
    obs.ENABLED = False
    try:
        off_s = _best_of(run_all, repeats)
        # the stripped baseline: helpers replaced by bare no-ops (call
        # sites resolve them via module attribute access, so this works
        # without touching any instrumented code)
        null_span = obs._NULL_SPAN
        names_to_stub = (
            "span",
            "event",
            "counter_inc",
            "gauge_set",
            "histogram_observe",
        )
        saved = {name: getattr(obs, name) for name in names_to_stub}
        try:
            obs.span = lambda *a, **k: null_span
            noop = lambda *a, **k: None  # noqa: E731
            obs.event = noop
            obs.counter_inc = noop
            obs.gauge_set = noop
            obs.histogram_observe = noop
            stripped_s = _best_of(run_all, repeats)
        finally:
            for name, fn in saved.items():
                setattr(obs, name, fn)
    finally:
        obs.ENABLED = was_enabled
    overhead_pct = (
        max((off_s - stripped_s) / stripped_s * 100.0, 0.0)
        if stripped_s > 0
        else 0.0
    )
    return {
        "off_s": off_s,
        "stripped_s": stripped_s,
        "overhead_pct": overhead_pct,
        "budget_pct": OBS_OVERHEAD_BUDGET_PCT,
        "benchmarks": count,
        "cycles": cycles,
        "repeats": repeats,
    }


def run_bench(
    quick: bool = False, output: str | Path | None = DEFAULT_OUTPUT
) -> dict:
    """Benchmark every kernel pair plus the end-to-end batch.

    Returns the result dict and, unless ``output`` is ``None``, writes it
    as JSON.  The ``kernels`` section has one entry (with a ``speedup``
    field) per registered kernel — the contract the CI smoke job checks.
    """
    from ..core import calibrated_supply

    network = calibrated_supply(150)
    repeats = _size("repeats", quick)
    cases = _kernel_cases(quick, network)
    missing = set(available_kernels()) - set(cases)
    if missing:
        raise RuntimeError(
            f"no bench case for registered kernels: {sorted(missing)}"
        )
    results = {
        "quick": quick,
        "kernels": {},
        "end_to_end": {},
    }
    for name in available_kernels():
        results["kernels"][name] = _time_pair(name, cases[name], repeats)
    results["end_to_end"]["characterize_batch"] = _bench_characterize_batch(
        quick, network, repeats
    )
    results["throughput"] = _bench_throughput(quick, network, repeats)
    results["obs_overhead"] = _bench_obs_overhead(quick, network, repeats)
    if output is not None:
        Path(output).write_text(json.dumps(results, indent=2) + "\n")
    return results


def format_results(results: dict) -> str:
    """Human-readable table of one :func:`run_bench` result dict."""
    lines = [
        f"kernel benchmarks ({'quick' if results['quick'] else 'full'} mode):",
        f"  {'kernel':<24} {'reference':>11} {'vectorized':>11} "
        f"{'speedup':>8}  {'max diff':>9}",
    ]
    rows = dict(results["kernels"])
    rows.update(results["end_to_end"])
    for name, row in rows.items():
        lines.append(
            f"  {name:<24} {row['reference_s'] * 1e3:>9.2f}ms "
            f"{row['vectorized_s'] * 1e3:>9.2f}ms "
            f"{row['speedup']:>7.1f}x  {row['max_abs_diff']:>9.2e}"
        )
    throughput = results.get("throughput")
    if throughput:
        char = throughput["characterize"]
        lines.append(
            f"  characterize throughput: "
            f"{char['vectorized_traces_per_s']:.1f} traces/s vectorized vs "
            f"{char['batched_traces_per_s']:.1f} traces/s batched "
            f"({char['batched_speedup']:.2f}x, "
            f"{char['traces']}x{char['cycles']} cycles)"
        )
        block = throughput["pipeline_block"]
        lines.append(
            f"  pipeline block dispatch: "
            f"{block['per_trace_traces_per_s']:.1f} traces/s per-trace vs "
            f"{block['block_traces_per_s']:.1f} traces/s blocked "
            f"({block['block_speedup']:.2f}x)"
        )
    overhead = results.get("obs_overhead")
    if overhead:
        lines.append(
            f"  obs off-path overhead: {overhead['overhead_pct']:.2f}% "
            f"(budget {overhead['budget_pct']:.0f}%; off "
            f"{overhead['off_s'] * 1e3:.2f}ms vs stripped "
            f"{overhead['stripped_s'] * 1e3:.2f}ms)"
        )
    return "\n".join(lines)

"""The unified error/result vocabulary of the whole package.

Everything this library deliberately raises derives from
:class:`ReproError`, so callers embedding the repro in a service can
write one ``except ReproError`` boundary and know that anything else
escaping is a genuine bug.  Subclasses also inherit the matching
builtin exception (``KeyError``, ``ValueError``, ``TimeoutError``,
``RuntimeError``) so code written against the pre-``repro.errors`` API —
``except KeyError`` around an artifact lookup, ``except RuntimeError``
around a batch — keeps working unchanged.

Hierarchy::

    ReproError
    ├── UsageError            (ValueError)   caller passed bad arguments
    ├── SpecError             (ValueError)   invalid job spec / stage name
    ├── ArtifactNotFoundError (KeyError)     missing batch artifact
    ├── JobError                             one job's failure, with identity
    │   ├── StageTimeoutError (TimeoutError) job exceeded its wall-clock budget
    │   ├── WorkerCrashError                 worker process died under a job
    │   ├── RetryExhaustedError              bounded retries all failed
    │   └── InjectedFaultError               fault-injection harness firing
    └── PipelineError         (RuntimeError) at least one job in a batch failed

Every error carries a ``details`` dict of structured context (job label,
stage, attempt, ...) and serializes via :meth:`ReproError.to_dict`, the
same shape the batch failure report and the JSONL observability log use.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "UsageError",
    "SpecError",
    "ArtifactNotFoundError",
    "JobError",
    "StageTimeoutError",
    "WorkerCrashError",
    "RetryExhaustedError",
    "InjectedFaultError",
    "PipelineError",
]


class ReproError(Exception):
    """Base class of every exception this library deliberately raises.

    ``details`` holds structured, JSON-scalar context (job label, stage
    name, attempt number, ...) so the same exception renders as a
    human-readable message *and* as a machine-readable failure-report
    entry without string parsing.
    """

    def __init__(self, message: str = "", **details) -> None:
        super().__init__(message)
        self.message = message
        self.details = {k: v for k, v in details.items() if v is not None}

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.message or super().__str__()

    def to_dict(self) -> dict:
        """The error as a JSON-ready failure-report entry."""
        return {
            "error": type(self).__name__,
            "message": self.message,
            **self.details,
        }


class UsageError(ReproError, ValueError):
    """The caller asked for something the API cannot mean (exit code 2)."""


class SpecError(ReproError, ValueError):
    """An invalid job spec, stage name, suite name or plan string."""


class ArtifactNotFoundError(ReproError, KeyError):
    """A requested batch artifact does not exist in any outcome."""


class JobError(ReproError):
    """One job's failure, carrying its identity through the chain.

    ``details`` conventionally includes ``job`` (the spec label),
    ``stage`` (the failing stage, when known) and ``attempt``.
    """


class StageTimeoutError(JobError, TimeoutError):
    """A job exceeded its per-job wall-clock budget and was killed."""


class WorkerCrashError(JobError):
    """A worker process died (signal / hard crash) while running a job."""


class RetryExhaustedError(JobError):
    """A job failed on every attempt its retry policy allowed."""


class InjectedFaultError(JobError):
    """Raised by the deterministic fault-injection harness, never by
    production code paths (see :mod:`repro.pipeline.faults`)."""


class PipelineError(ReproError, RuntimeError):
    """At least one job in a batch failed.

    Historically defined in :mod:`repro.pipeline.executor` as a bare
    ``RuntimeError`` subclass; it lives here now, and the executor
    re-exports it so ``from repro.pipeline import PipelineError`` and
    ``except RuntimeError`` both keep working.
    """

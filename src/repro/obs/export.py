"""Exporters: JSONL event log, console summary, Prometheus, Chrome trace.

Four consumers of the same telemetry:

* :class:`JsonlWriter` streams one JSON object per line — spans and
  events as they complete, final metric totals at ``finish()`` — giving
  a machine-readable run log that ``repro obs report`` can re-aggregate.
* :func:`summary_table` renders the end-of-run console view: a
  per-span-name latency table plus cache and event counters.
* Prometheus text format comes straight from
  :meth:`~repro.obs.registry.MetricsRegistry.to_prometheus`; see
  ``docs/OBSERVABILITY.md`` for a scrape example.
* :func:`chrome_trace` converts a record stream into the Chrome
  trace-event JSON format, so a multi-process batch renders as one
  timeline in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``
  — spans become complete (``X``) events on their process/thread track,
  events become instants, profiler samples become counter tracks.
"""

from __future__ import annotations

import json
from pathlib import Path

from .registry import MetricsRegistry

__all__ = [
    "JsonlWriter",
    "SpanCollector",
    "chrome_trace",
    "summary_table",
    "write_chrome_trace",
]


class JsonlWriter:
    """Append-only JSON-lines record sink."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        if self.path.parent != Path("."):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "w", encoding="utf-8")
        self.records = 0

    def write(self, record: dict) -> None:
        if self._fh is None:
            return
        self._fh.write(json.dumps(record, sort_keys=True, default=str) + "\n")
        # flush per record: forked workers must never inherit buffered
        # lines (their exit-time flush would duplicate them in the log)
        self._fh.flush()
        self.records += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class SpanCollector:
    """Per-span-name aggregation (count, wall, CPU, max, peak RSS)."""

    def __init__(self) -> None:
        self._stats: dict[str, list[float]] = {}

    def add(
        self, name: str, wall_s: float, cpu_s: float, rss_bytes: float = 0
    ) -> None:
        stats = self._stats.get(name)
        if stats is None:
            self._stats[name] = [1, wall_s, cpu_s, wall_s, rss_bytes]
        else:
            stats[0] += 1
            stats[1] += wall_s
            stats[2] += cpu_s
            stats[3] = max(stats[3], wall_s)
            stats[4] = max(stats[4], rss_bytes)

    def reset(self) -> None:
        self._stats.clear()

    def __len__(self) -> int:
        return len(self._stats)

    def rows(self) -> dict[str, dict[str, float]]:
        """``{name: {count, wall_s, cpu_s, max_s, mean_s, rss_peak_bytes}}``,
        sorted by wall."""
        out = {}
        for name, (count, wall, cpu, peak, rss) in sorted(
            self._stats.items(), key=lambda kv: -kv[1][1]
        ):
            out[name] = {
                "count": int(count),
                "wall_s": wall,
                "cpu_s": cpu,
                "max_s": peak,
                "mean_s": wall / count if count else 0.0,
                "rss_peak_bytes": int(rss),
            }
        return out


def _counter_total(registry: MetricsRegistry, name: str) -> float:
    families = {m.name: m for m in registry.families()}
    metric = families.get(name)
    if metric is None or metric.kind != "counter":
        return 0.0
    return sum(metric._series.values())


def summary_table(collector: SpanCollector, registry: MetricsRegistry) -> str:
    """The end-of-run console summary: spans, cache traffic, events."""
    from .. import viz

    lines = []
    rows = collector.rows()
    if rows:
        with_rss = any(s["rss_peak_bytes"] for s in rows.values())
        headers = ["count", "wall s", "mean ms", "max ms", "cpu s"]
        if with_rss:
            headers.append("rss MB")
        table_rows = {}
        for name, s in rows.items():
            cells = [
                s["count"],
                f"{s['wall_s']:.3f}",
                f"{s['mean_s'] * 1e3:.1f}",
                f"{s['max_s'] * 1e3:.1f}",
                f"{s['cpu_s']:.3f}",
            ]
            if with_rss:
                cells.append(f"{s['rss_peak_bytes'] / 1e6:.1f}")
            table_rows[name] = cells
        lines.append(
            viz.table(
                table_rows,
                headers=headers,
                title="observability summary — spans",
            )
        )
    hits = _counter_total(registry, "pipeline_cache_hits_total")
    misses = _counter_total(registry, "pipeline_cache_misses_total")
    if hits or misses:
        total = hits + misses
        rate = 100.0 * hits / total if total else 0.0
        lines.append(
            f"cache: {hits:.0f} hits / {misses:.0f} misses "
            f"({rate:.0f}% hit rate)"
        )
    events = _counter_total(registry, "events_total")
    if events:
        lines.append(f"events: {events:.0f} logged")
    if not lines:
        return "observability summary: nothing recorded"
    return "\n".join(lines)


# -- Chrome trace-event format -------------------------------------------------


def chrome_trace(records: list[dict]) -> dict:
    """Obs records as a Chrome trace-event JSON document.

    Spans become complete (``"ph": "X"``) duration events laid out on
    their originating ``pid``/``tid`` track; events become thread-scoped
    instants (``"ph": "i"``); profiler samples become RSS/CPU counter
    tracks (``"ph": "C"``).  Every span's ``args`` carries its
    ``trace_id`` / ``span_id`` / ``parent_id``, so the causal tree
    survives the conversion even though the Chrome format itself only
    knows tracks — tooling (and the CI smoke assertions) can rebuild the
    tree with :func:`repro.obs.context.span_tree`.
    """
    events: list[dict] = []
    trace_ids = set()
    for r in records:
        kind = r.get("type")
        t_us = float(r.get("t", 0.0)) * 1e6
        pid = r.get("pid", 0)
        if kind == "span":
            if r.get("trace_id"):
                trace_ids.add(r["trace_id"])
            args = dict(r.get("attrs") or {})
            args.update(
                trace_id=r.get("trace_id"),
                span_id=r.get("span_id"),
                parent_id=r.get("parent_id"),
                cpu_s=r.get("cpu_s"),
            )
            if r.get("rss_peak_bytes"):
                args["rss_peak_bytes"] = r["rss_peak_bytes"]
            events.append(
                {
                    "name": r["name"],
                    "cat": "span",
                    "ph": "X",
                    "ts": t_us,
                    "dur": max(float(r.get("wall_s", 0.0)) * 1e6, 0.001),
                    "pid": pid,
                    "tid": r.get("tid", pid),
                    "args": args,
                }
            )
        elif kind == "event":
            events.append(
                {
                    "name": r["name"],
                    "cat": "event",
                    "ph": "i",
                    "s": "p",  # process-scoped instant
                    "ts": t_us,
                    "pid": pid,
                    "tid": r.get("tid", pid),
                    "args": dict(r.get("attrs") or {}),
                }
            )
        elif kind == "sample":
            events.append(
                {
                    "name": "resources",
                    "cat": "profile",
                    "ph": "C",
                    "ts": t_us,
                    "pid": pid,
                    "args": {
                        "rss_mb": round(r.get("rss_bytes", 0) / 1e6, 3),
                        "cpu_s": round(r.get("cpu_s", 0.0), 4),
                    },
                }
            )
    doc: dict = {"traceEvents": events, "displayTimeUnit": "ms"}
    if trace_ids:
        doc["otherData"] = {"trace_ids": sorted(trace_ids)}
    return doc


def write_chrome_trace(records: list[dict], path: str | Path) -> int:
    """Write ``records`` as a Chrome trace file; returns the event count."""
    doc = chrome_trace(records)
    target = Path(path)
    if target.parent != Path("."):
        target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(doc, default=str) + "\n", encoding="utf-8")
    return len(doc["traceEvents"])

"""Exporters: JSONL event log, console summary, Prometheus dump.

Three consumers of the same telemetry:

* :class:`JsonlWriter` streams one JSON object per line — spans and
  events as they complete, final metric totals at ``finish()`` — giving
  a machine-readable run log that ``repro obs report`` can re-aggregate.
* :func:`summary_table` renders the end-of-run console view: a
  per-span-name latency table plus cache and event counters.
* Prometheus text format comes straight from
  :meth:`~repro.obs.registry.MetricsRegistry.to_prometheus`; see
  ``docs/OBSERVABILITY.md`` for a scrape example.
"""

from __future__ import annotations

import json
from pathlib import Path

from .registry import MetricsRegistry

__all__ = ["JsonlWriter", "SpanCollector", "summary_table"]


class JsonlWriter:
    """Append-only JSON-lines record sink."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        if self.path.parent != Path("."):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "w", encoding="utf-8")
        self.records = 0

    def write(self, record: dict) -> None:
        if self._fh is None:
            return
        self._fh.write(json.dumps(record, sort_keys=True, default=str) + "\n")
        # flush per record: forked workers must never inherit buffered
        # lines (their exit-time flush would duplicate them in the log)
        self._fh.flush()
        self.records += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class SpanCollector:
    """Per-span-name aggregation (count, wall, CPU, max) for the summary."""

    def __init__(self) -> None:
        self._stats: dict[str, list[float]] = {}

    def add(self, name: str, wall_s: float, cpu_s: float) -> None:
        stats = self._stats.get(name)
        if stats is None:
            self._stats[name] = [1, wall_s, cpu_s, wall_s]
        else:
            stats[0] += 1
            stats[1] += wall_s
            stats[2] += cpu_s
            stats[3] = max(stats[3], wall_s)

    def reset(self) -> None:
        self._stats.clear()

    def __len__(self) -> int:
        return len(self._stats)

    def rows(self) -> dict[str, dict[str, float]]:
        """``{name: {count, wall_s, cpu_s, max_s, mean_s}}``, sorted by wall."""
        out = {}
        for name, (count, wall, cpu, peak) in sorted(
            self._stats.items(), key=lambda kv: -kv[1][1]
        ):
            out[name] = {
                "count": int(count),
                "wall_s": wall,
                "cpu_s": cpu,
                "max_s": peak,
                "mean_s": wall / count if count else 0.0,
            }
        return out


def _counter_total(registry: MetricsRegistry, name: str) -> float:
    families = {m.name: m for m in registry.families()}
    metric = families.get(name)
    if metric is None or metric.kind != "counter":
        return 0.0
    return sum(metric._series.values())


def summary_table(collector: SpanCollector, registry: MetricsRegistry) -> str:
    """The end-of-run console summary: spans, cache traffic, events."""
    from .. import viz

    lines = []
    rows = collector.rows()
    if rows:
        table_rows = {
            name: [
                s["count"],
                f"{s['wall_s']:.3f}",
                f"{s['mean_s'] * 1e3:.1f}",
                f"{s['max_s'] * 1e3:.1f}",
                f"{s['cpu_s']:.3f}",
            ]
            for name, s in rows.items()
        }
        lines.append(
            viz.table(
                table_rows,
                headers=["count", "wall s", "mean ms", "max ms", "cpu s"],
                title="observability summary — spans",
            )
        )
    hits = _counter_total(registry, "pipeline_cache_hits_total")
    misses = _counter_total(registry, "pipeline_cache_misses_total")
    if hits or misses:
        total = hits + misses
        rate = 100.0 * hits / total if total else 0.0
        lines.append(
            f"cache: {hits:.0f} hits / {misses:.0f} misses "
            f"({rate:.0f}% hit rate)"
        )
    events = _counter_total(registry, "events_total")
    if events:
        lines.append(f"events: {events:.0f} logged")
    if not lines:
        return "observability summary: nothing recorded"
    return "\n".join(lines)

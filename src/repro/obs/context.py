"""Trace-context propagation: one causal tree per batch, across processes.

Observability v1 recorded spans per process — a worker's ``pipeline.job``
span and the supervisor's ``pipeline.batch`` span shared nothing but a
name, so a merged record stream could not be stitched back into one
timeline.  v2 gives every batch a **trace id** and every span a
**span id** plus a **parent span id**:

* spans opened in the same thread parent on the enclosing span, exactly
  as the v1 name-based nesting did;
* a *root* span (empty thread stack) parents on the process's
  **boundary context** — the ``(trace_id, parent_span_id)`` pair the
  supervisor ships to a worker alongside each dispatched job — so a
  worker's ``pipeline.job`` span hangs off the supervisor's
  ``pipeline.batch`` span and the merged stream reconstructs one tree
  rooted at the batch, no matter how many processes contributed.

Ids are cheap random hex (``os.urandom``), never sequence numbers, so
two workers can never collide.  The propagation payload is a plain
picklable :class:`TraceContext`, which crosses the supervisor→worker
inbox with the job itself.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = [
    "TraceContext",
    "new_span_id",
    "new_trace_id",
    "span_tree",
]


def new_trace_id() -> str:
    """A fresh 128-bit trace id as 32 hex chars (one per batch/run)."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh 64-bit span id as 16 hex chars (one per span)."""
    return os.urandom(8).hex()


@dataclass(frozen=True)
class TraceContext:
    """The cross-process propagation payload: where new root spans hang.

    ``trace_id`` names the whole batch; ``parent_span_id`` is the
    supervisor-side span a worker's root spans should parent on (the
    ``pipeline.batch`` span).  ``None`` fields mean "no active trace" —
    the worker starts its own, exactly like v1.
    """

    trace_id: str | None = None
    parent_span_id: str | None = None

    def to_wire(self) -> tuple[str | None, str | None]:
        """The context as a plain picklable tuple."""
        return (self.trace_id, self.parent_span_id)

    @classmethod
    def from_wire(cls, wire) -> "TraceContext":
        if wire is None:
            return cls()
        return cls(trace_id=wire[0], parent_span_id=wire[1])


def span_tree(records: list[dict]) -> dict:
    """Index span records into a causal tree by span id.

    Returns ``{"roots": [...], "children": {span_id: [records]},
    "by_id": {span_id: record}, "orphans": [...]}``.  A record whose
    ``parent_id`` names no recorded span is an *orphan* (e.g. the parent
    span had not closed when the log was cut); the batch root itself has
    ``parent_id is None`` and lands in ``roots``.
    """
    by_id: dict[str, dict] = {}
    for r in records:
        if r.get("type") == "span" and r.get("span_id"):
            by_id[r["span_id"]] = r
    roots, orphans = [], []
    children: dict[str, list[dict]] = {}
    for r in by_id.values():
        parent = r.get("parent_id")
        if parent is None:
            roots.append(r)
        elif parent in by_id:
            children.setdefault(parent, []).append(r)
        else:
            orphans.append(r)
    return {
        "roots": roots,
        "children": children,
        "by_id": by_id,
        "orphans": orphans,
    }

"""Live observability endpoint: /metrics, /healthz and /events over HTTP.

Zero dependencies — :class:`ObsServer` wraps a stdlib
``ThreadingHTTPServer`` running in a daemon thread next to the workload,
so a batch started with ``--obs-listen 127.0.0.1:9100`` can be watched
while it runs:

* ``GET /metrics`` — the live process registry in Prometheus text
  exposition format (point a Prometheus scrape job at it, or just
  ``curl`` it);
* ``GET /healthz`` — ``{"status": "ok", ...}`` liveness JSON with
  uptime, PID and the active trace id;
* ``GET /events`` — recent span/event/sample records as JSONL, newest
  last.  ``?follow=1`` holds the connection open and streams records as
  they happen (chunked transfer), ``?n=100`` bounds the backlog replay,
  ``?type=event`` filters by record type.  Emergency onsets, actuations
  and retry/requeue events all flow through here live.

The server subscribes to the record stream via
:func:`repro.obs.trace.add_subscriber`; worker records arrive through
the normal absorb path, so one endpoint in the supervisor shows the
whole batch.  ``repro obs serve`` runs a standalone instance over a
recorded JSONL log (serving its reconstructed metrics), which is also
what the future ``repro serve`` front-end will mount.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from . import trace

__all__ = ["ObsServer", "parse_listen"]

#: Ring-buffer capacity for /events backlog replay.
EVENT_BACKLOG = 2048


def parse_listen(value: str) -> tuple[str, int]:
    """``"HOST:PORT"`` or ``"PORT"`` → ``(host, port)``.

    A bare port binds localhost; port 0 asks the OS for a free one
    (handy in tests — read the bound port off ``server.port``).
    """
    value = value.strip()
    if ":" in value:
        host, _, port_s = value.rpartition(":")
        host = host or "127.0.0.1"
    else:
        host, port_s = "127.0.0.1", value
    try:
        port = int(port_s)
    except ValueError:
        raise ValueError(
            f"bad --obs-listen value {value!r}: want HOST:PORT"
        ) from None
    if not 0 <= port <= 65535:
        raise ValueError(f"bad --obs-listen port {port}")
    return host, port


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-obs"

    # the outer ObsServer, injected by make_handler
    obs: "ObsServer"

    def log_message(self, fmt, *args):  # default impl spams stderr
        pass

    def _send(self, code: int, content_type: str, body: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        url = urlsplit(self.path)
        query = parse_qs(url.query)
        try:
            if url.path == "/metrics":
                self._send(
                    200,
                    "text/plain; version=0.0.4; charset=utf-8",
                    self.obs.metrics_text().encode("utf-8"),
                )
            elif url.path == "/healthz":
                self._send(
                    200,
                    "application/json",
                    (json.dumps(self.obs.health()) + "\n").encode("utf-8"),
                )
            elif url.path == "/events":
                self._do_events(query)
            elif url.path == "/":
                self._send(
                    200,
                    "text/plain; charset=utf-8",
                    b"repro obs endpoints: /metrics /healthz /events\n",
                )
            else:
                self._send(404, "text/plain", b"not found\n")
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing to clean up

    def _do_events(self, query: dict) -> None:
        follow = query.get("follow", ["0"])[0] not in ("0", "", "false")
        type_filter = query.get("type", [None])[0]
        try:
            backlog_n = int(query.get("n", [str(EVENT_BACKLOG)])[0])
        except ValueError:
            backlog_n = EVENT_BACKLOG

        def matches(record: dict) -> bool:
            return type_filter is None or record.get("type") == type_filter

        backlog = [r for r in self.obs.backlog() if matches(r)][-backlog_n:]
        if not follow:
            body = "".join(
                json.dumps(r, default=str) + "\n" for r in backlog
            ).encode("utf-8")
            self._send(200, "application/x-ndjson", body)
            return

        # follow mode: chunked stream until the client disconnects or the
        # server shuts down
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        feed: deque = deque(backlog, maxlen=EVENT_BACKLOG)
        ready = threading.Event()
        ready.set()

        def push(record: dict) -> None:
            if matches(record):
                feed.append(record)
                ready.set()

        self.obs.add_listener(push)
        try:
            while not self.obs.stopping.is_set():
                while feed:
                    line = json.dumps(feed.popleft(), default=str) + "\n"
                    self._write_chunk(line.encode("utf-8"))
                ready.clear()
                ready.wait(timeout=0.5)
            self._write_chunk(b"")
        except (BrokenPipeError, ConnectionResetError):
            pass
        finally:
            self.obs.remove_listener(push)

    def _write_chunk(self, data: bytes) -> None:
        self.wfile.write(f"{len(data):x}\r\n".encode("ascii"))
        self.wfile.write(data + b"\r\n")
        self.wfile.flush()


class ObsServer:
    """The in-process observability HTTP server.

    ``registry`` defaults to the live :func:`repro.obs.trace.registry`;
    pass a rebuilt one (see
    :func:`repro.obs.report.registry_from_records`) to serve a recorded
    log instead.  ``subscribe=True`` (default) taps the live record
    stream for ``/events``.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        registry=None,
        subscribe: bool = True,
    ) -> None:
        self._registry_override = registry
        self._subscribe = subscribe
        self._backlog: deque = deque(maxlen=EVENT_BACKLOG)
        self._listeners: list = []
        self._lock = threading.Lock()
        self.stopping = threading.Event()
        self.t_start = time.time()

        handler = type("BoundHandler", (_Handler,), {"obs": self})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: threading.Thread | None = None

    # -- data feeds ------------------------------------------------------------

    def metrics_text(self) -> str:
        registry = self._registry_override or trace.registry()
        return registry.to_prometheus()

    def health(self) -> dict:
        return {
            "status": "ok",
            "pid": os.getpid(),
            "uptime_s": round(time.time() - self.t_start, 3),
            "trace_id": trace.current_trace_id(),
            "obs_mode": trace.mode(),
            "events_buffered": len(self._backlog),
        }

    def backlog(self) -> list[dict]:
        with self._lock:
            return list(self._backlog)

    def _on_record(self, record: dict) -> None:
        with self._lock:
            self._backlog.append(record)
            listeners = list(self._listeners)
        for listener in listeners:
            listener(record)

    def add_listener(self, fn) -> None:
        with self._lock:
            self._listeners.append(fn)

    def remove_listener(self, fn) -> None:
        with self._lock:
            if fn in self._listeners:
                self._listeners.remove(fn)

    def feed(self, records) -> None:
        """Preload records into the /events backlog (log-serving mode)."""
        with self._lock:
            self._backlog.extend(records)

    # -- lifecycle -------------------------------------------------------------

    @property
    def url(self) -> str:
        host = "127.0.0.1" if self.host in ("0.0.0.0", "") else self.host
        return f"http://{host}:{self.port}"

    def start(self) -> "ObsServer":
        if self._thread is not None:
            return self
        if self._subscribe:
            trace.add_subscriber(self._on_record)
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-obs-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self.stopping.set()
        if self._subscribe:
            trace.remove_subscriber(self._on_record)
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)
        self._thread = None

    def __enter__(self) -> "ObsServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

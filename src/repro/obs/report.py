"""Offline rendering of a JSONL observability log.

``repro obs report run.jsonl`` re-aggregates the streamed records into
the same per-stage latency / cache breakdown the live ``--obs summary``
exporter prints, so a run's telemetry can be inspected (or diffed
against another run's) long after the process exited.

A log cut short by a crash or SIGKILL can end in a torn line — half a
JSON object with no newline.  :func:`scan_records` (used by the CLI)
skips and counts such lines, mirroring the trace store's torn-tail
tolerance; :func:`load_records` stays strict for callers that want
corruption to be loud.
"""

from __future__ import annotations

import json
from pathlib import Path

from .export import SpanCollector
from .registry import MetricsRegistry

__all__ = ["load_records", "registry_from_records", "render_report", "scan_records"]


def _parse_line(line: str) -> dict | None:
    line = line.strip()
    if not line:
        return None
    record = json.loads(line)  # raises JSONDecodeError on torn tail
    if not isinstance(record, dict) or "type" not in record:
        raise json.JSONDecodeError("not an obs record", line, 0)
    return record


def load_records(path: str | Path) -> list[dict]:
    """Parse one record per line, rejecting anything malformed."""
    records = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            try:
                record = _parse_line(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: bad JSON: {exc}") from None
            if record is not None:
                records.append(record)
    return records


def scan_records(path: str | Path) -> tuple[list[dict], int]:
    """Lenient load: ``(records, skipped)`` — malformed lines are counted.

    A worker killed mid-write (the supervisor SIGKILLs hung workers)
    leaves at most a torn trailing line; every intact record before it is
    still valuable, so the report should render what it can and say what
    it skipped instead of refusing the whole file.
    """
    records: list[dict] = []
    skipped = 0
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            try:
                record = _parse_line(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if record is not None:
                records.append(record)
    return records, skipped


def registry_from_records(records: list[dict]) -> MetricsRegistry:
    """Rebuild final metric totals from the log's ``metric`` records."""
    registry = MetricsRegistry()
    for record in records:
        if record["type"] != "metric":
            continue
        labels = record.get("labels", {})
        value = record["value"]
        kind = record.get("kind", "counter")
        if kind == "counter":
            registry.counter(record["name"]).inc(value, **labels)
        elif kind == "gauge":
            registry.gauge(record["name"]).set(value, **labels)
        elif kind == "histogram":
            # totals suffice for reporting; bucket shape is in the log
            hist = registry.histogram(record["name"])
            state = hist._state(
                tuple(sorted((str(k), str(v)) for k, v in labels.items()))
            )
            state["count"] += value["count"]
            state["sum"] += value["sum"]
    return registry


# back-compat alias (pre-v2 name)
_registry_from = registry_from_records


def render_report(path: str | Path) -> str:
    """The per-stage latency and cache breakdown of one JSONL log."""
    from .export import summary_table

    records, skipped = scan_records(path)
    collector = SpanCollector()
    spans = events = samples = 0
    for record in records:
        if record["type"] == "span":
            collector.add(
                record["name"],
                record.get("wall_s", 0.0),
                record.get("cpu_s", 0.0),
                record.get("rss_peak_bytes", 0),
            )
            spans += 1
        elif record["type"] == "event":
            events += 1
        elif record["type"] == "sample":
            samples += 1
    registry = registry_from_records(records)
    parts = [f"{spans} spans", f"{events} events"]
    if samples:
        parts.append(f"{samples} samples")
    header = f"{path}: {len(records)} records ({', '.join(parts)})"
    if skipped:
        header += f" — skipped {skipped} malformed line(s)"
    return header + "\n" + summary_table(collector, registry)

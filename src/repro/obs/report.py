"""Offline rendering of a JSONL observability log.

``repro obs report run.jsonl`` re-aggregates the streamed records into
the same per-stage latency / cache breakdown the live ``--obs summary``
exporter prints, so a run's telemetry can be inspected (or diffed
against another run's) long after the process exited.
"""

from __future__ import annotations

import json
from pathlib import Path

from .export import SpanCollector
from .registry import MetricsRegistry

__all__ = ["load_records", "render_report"]


def load_records(path: str | Path) -> list[dict]:
    """Parse one record per line, rejecting anything malformed."""
    records = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: bad JSON: {exc}") from None
            if not isinstance(record, dict) or "type" not in record:
                raise ValueError(f"{path}:{lineno}: not an obs record")
            records.append(record)
    return records


def _registry_from(records: list[dict]) -> MetricsRegistry:
    """Rebuild final metric totals from the log's ``metric`` records."""
    registry = MetricsRegistry()
    for record in records:
        if record["type"] != "metric":
            continue
        labels = record.get("labels", {})
        value = record["value"]
        kind = record.get("kind", "counter")
        if kind == "counter":
            registry.counter(record["name"]).inc(value, **labels)
        elif kind == "gauge":
            registry.gauge(record["name"]).set(value, **labels)
        elif kind == "histogram":
            # totals suffice for reporting; bucket shape is in the log
            hist = registry.histogram(record["name"])
            state = hist._state(
                tuple(sorted((str(k), str(v)) for k, v in labels.items()))
            )
            state["count"] += value["count"]
            state["sum"] += value["sum"]
    return registry


def render_report(path: str | Path) -> str:
    """The per-stage latency and cache breakdown of one JSONL log."""
    from .export import summary_table

    records = load_records(path)
    collector = SpanCollector()
    spans = events = 0
    for record in records:
        if record["type"] == "span":
            collector.add(
                record["name"],
                record.get("wall_s", 0.0),
                record.get("cpu_s", 0.0),
            )
            spans += 1
        elif record["type"] == "event":
            events += 1
    registry = _registry_from(records)
    header = (
        f"{path}: {len(records)} records "
        f"({spans} spans, {events} events)"
    )
    return header + "\n" + summary_table(collector, registry)

"""Tracing spans, event log and the process-global observability state.

The module-level :data:`ENABLED` flag is the single gate every
instrumentation site checks: with observability off (the default) a
``span(...)`` returns one shared no-op object and the metric helpers
return immediately, so instrumented code pays one attribute load and a
branch — nothing allocates, nothing locks.

With observability on:

* ``span("stage.simulate", benchmark="gzip")`` times a block (wall and
  CPU), nests via a per-thread stack into a per-run trace tree, and on
  exit feeds a span record to the active exporter;
* ``event("emergency_onset", cycle=812)`` logs one discrete occurrence
  and bumps the ``events_total`` counter;
* ``counter_inc`` / ``gauge_set`` / ``histogram_observe`` record into
  the process :class:`~repro.obs.registry.MetricsRegistry`.

Worker processes run in *capture* mode (:func:`worker_mode`): span and
event records buffer in memory instead of hitting the parent's log file,
and :func:`drain_records` hands them to the executor, which ships them
back through the result channel for the parent to :func:`absorb`.
"""

from __future__ import annotations

import os
import threading
import time

from .export import JsonlWriter, SpanCollector
from .registry import DEFAULT_BUCKETS, MetricsRegistry, diff_snapshots

__all__ = [
    "ENABLED",
    "Span",
    "absorb",
    "counter_inc",
    "current_span",
    "disable",
    "drain_records",
    "enable",
    "event",
    "finish",
    "gauge_set",
    "histogram_observe",
    "mode",
    "registry",
    "span",
    "span_collector",
    "worker_mode",
]

#: Fast-path gate consulted by every instrumentation site.
ENABLED = False

#: Default JSONL log location when ``--obs jsonl`` gives no path.
DEFAULT_JSONL_PATH = "repro-obs.jsonl"

#: Cap on buffered records in worker-capture mode (overflow is counted,
#: not silently dropped).
CAPTURE_LIMIT = 100_000

_MODE = "off"
_REGISTRY = MetricsRegistry()
_COLLECTOR = SpanCollector()
_WRITER: JsonlWriter | None = None
_CAPTURE = False
_CAPTURED: list[dict] = []
_LOCAL = threading.local()


def registry() -> MetricsRegistry:
    """The live process registry (valid whether or not enabled)."""
    return _REGISTRY


def span_collector() -> SpanCollector:
    """The in-process per-span-name aggregation."""
    return _COLLECTOR


def mode() -> str:
    """The active exporter mode (``off`` when disabled)."""
    return _MODE


def enable(mode: str = "summary", path: str | None = None) -> None:
    """Turn observability on, resetting any previous run's state.

    ``mode`` selects the exporter: ``summary`` (console table at
    :func:`finish`), ``jsonl`` (stream records to ``path``) or ``prom``
    (Prometheus text dump at :func:`finish`).
    """
    global ENABLED, _MODE, _WRITER, _CAPTURE
    if mode not in ("summary", "jsonl", "prom"):
        raise ValueError(f"unknown obs mode {mode!r}")
    disable()
    _MODE = mode
    _CAPTURE = False
    if mode == "jsonl":
        _WRITER = JsonlWriter(path or DEFAULT_JSONL_PATH)
    ENABLED = True


def worker_mode(enabled: bool) -> None:
    """Configure a pool worker: capture records, never touch the log.

    Called at the top of every worker job.  After a ``fork`` the child
    inherits the parent's writer handle; buffering instead of writing
    keeps the JSONL file single-writer.
    """
    global ENABLED, _WRITER, _CAPTURE
    _WRITER = None
    _CAPTURE = bool(enabled)
    ENABLED = bool(enabled)


def disable() -> None:
    """Turn observability off and drop all recorded state."""
    global ENABLED, _MODE, _WRITER, _CAPTURE
    ENABLED = False
    _MODE = "off"
    if _WRITER is not None:
        _WRITER.close()
        _WRITER = None
    _CAPTURE = False
    _CAPTURED.clear()
    _REGISTRY.reset()
    _COLLECTOR.reset()
    _LOCAL.stack = []


def finish() -> str | None:
    """Flush the active exporter and disable; returns text to print.

    ``summary`` returns the console table, ``prom`` the Prometheus text
    dump, ``jsonl`` a one-line pointer at the written log (after
    appending one ``metric`` record per series, so the log alone can
    reproduce every final total).
    """
    from .export import summary_table

    out: str | None = None
    if ENABLED:
        if _MODE == "summary":
            out = summary_table(_COLLECTOR, _REGISTRY)
        elif _MODE == "prom":
            out = _REGISTRY.to_prometheus()
        elif _MODE == "jsonl" and _WRITER is not None:
            for record in _metric_records():
                _WRITER.write(record)
            out = (
                f"observability log: {_WRITER.path} "
                f"({_WRITER.records} records) — "
                f"render with `repro obs report {_WRITER.path}`"
            )
    disable()
    return out


def _metric_records() -> list[dict]:
    """One JSONL record per metric series (final totals)."""
    records = []
    now = time.time()
    for name, family in _REGISTRY.snapshot().items():
        for key, value in family["series"].items():
            records.append(
                {
                    "type": "metric",
                    "t": now,
                    "name": name,
                    "kind": family["kind"],
                    "labels": dict(key),
                    "value": value,
                }
            )
    return records


def _emit(record: dict) -> None:
    if _WRITER is not None:
        _WRITER.write(record)
    elif _CAPTURE:
        if len(_CAPTURED) < CAPTURE_LIMIT:
            _CAPTURED.append(record)
        else:
            _REGISTRY.counter(
                "obs_records_dropped_total",
                "records dropped by the worker capture buffer cap",
            ).inc()


def drain_records() -> list[dict]:
    """Take (and clear) the worker-captured span/event records."""
    records = list(_CAPTURED)
    _CAPTURED.clear()
    return records


def snapshot_delta(before: dict) -> dict:
    """Registry delta since ``before`` (see :func:`diff_snapshots`)."""
    return diff_snapshots(before, _REGISTRY.snapshot())


def absorb(delta: dict | None, records: list[dict] | None) -> None:
    """Fold a worker's metric delta and captured records into this process.

    Call only with payloads produced in *another* process — the caller
    checks the producing PID so inline execution is never double-counted.
    """
    if not ENABLED:
        return
    if delta:
        _REGISTRY.merge(delta)
    for record in records or ():
        if record.get("type") == "span":
            _COLLECTOR.add(
                record["name"],
                record.get("wall_s", 0.0),
                record.get("cpu_s", 0.0),
            )
        if _WRITER is not None:
            _WRITER.write(record)


# -- spans ---------------------------------------------------------------------


def _stack() -> list:
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = _LOCAL.stack = []
    return stack


class Span:
    """One timed, attributed, nestable block of work."""

    __slots__ = (
        "name",
        "attrs",
        "children",
        "depth",
        "parent_name",
        "t_start",
        "wall_s",
        "cpu_s",
        "_cpu_start",
    )

    def __init__(self, name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs
        self.children: list[Span] = []
        self.depth = 0
        self.parent_name: str | None = None
        self.t_start = 0.0
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self._cpu_start = 0.0

    def set(self, **attrs) -> None:
        """Attach attributes mid-flight (e.g. a result count)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        stack = _stack()
        if stack:
            parent = stack[-1]
            self.depth = parent.depth + 1
            self.parent_name = parent.name
            parent.children.append(self)
        stack.append(self)
        self.t_start = time.time()
        self._cpu_start = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.cpu_s = time.process_time() - self._cpu_start
        self.wall_s = max(time.time() - self.t_start, 0.0)
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        if not ENABLED:  # disabled mid-span: drop silently
            return
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        _COLLECTOR.add(self.name, self.wall_s, self.cpu_s)
        _emit(
            {
                "type": "span",
                "t": self.t_start,
                "name": self.name,
                "attrs": self.attrs,
                "wall_s": self.wall_s,
                "cpu_s": self.cpu_s,
                "depth": self.depth,
                "parent": self.parent_name,
                "pid": os.getpid(),
            }
        )

    def tree(self, indent: int = 0) -> str:
        """Render this span's subtree, one line per span."""
        lines = [f"{'  ' * indent}{self.name} {self.wall_s * 1e3:.2f} ms"]
        for child in self.children:
            lines.append(child.tree(indent + 1))
        return "\n".join(lines)


class _NullSpan:
    """The shared disabled-mode span: every operation is a no-op."""

    __slots__ = ()
    name = ""
    attrs: dict = {}
    children: list = []
    wall_s = 0.0
    cpu_s = 0.0

    def set(self, **attrs) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    def tree(self, indent: int = 0) -> str:
        return ""


_NULL_SPAN = _NullSpan()


def span(name: str, **attrs):
    """Context manager timing one named block (no-op when disabled)."""
    if not ENABLED:
        return _NULL_SPAN
    return Span(name, attrs)


def current_span():
    """The innermost live span of this thread, or ``None``."""
    stack = getattr(_LOCAL, "stack", None)
    return stack[-1] if stack else None


# -- events and metric helpers -------------------------------------------------


def event(name: str, **attrs) -> None:
    """Log one discrete occurrence (emergency onset, actuation, ...)."""
    if not ENABLED:
        return
    _REGISTRY.counter("events_total", "discrete events by name").inc(
        event=name
    )
    _emit(
        {
            "type": "event",
            "t": time.time(),
            "name": name,
            "attrs": attrs,
            "pid": os.getpid(),
        }
    )


def counter_inc(name: str, value: float = 1.0, help: str = "", **labels) -> None:
    """Bump a counter (no-op when disabled)."""
    if not ENABLED:
        return
    _REGISTRY.counter(name, help).inc(value, **labels)


def gauge_set(name: str, value: float, help: str = "", **labels) -> None:
    """Set a gauge (no-op when disabled)."""
    if not ENABLED:
        return
    _REGISTRY.gauge(name, help).set(value, **labels)


def histogram_observe(
    name: str,
    value: float,
    help: str = "",
    buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    **labels,
) -> None:
    """Record one histogram sample (no-op when disabled)."""
    if not ENABLED:
        return
    _REGISTRY.histogram(name, help, buckets=buckets).observe(value, **labels)

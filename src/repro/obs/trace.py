"""Tracing spans, event log and the process-global observability state.

The module-level :data:`ENABLED` flag is the single gate every
instrumentation site checks: with observability off (the default) a
``span(...)`` returns one shared no-op object and the metric helpers
return immediately, so instrumented code pays one attribute load and a
branch — nothing allocates, nothing locks.

With observability on:

* ``span("stage.simulate", benchmark="gzip")`` times a block (wall and
  CPU), nests via a per-thread stack into a per-run trace tree, and on
  exit feeds a span record to the active exporter;
* every span carries a ``span_id`` / ``parent_id`` under the run's
  ``trace_id`` (see :mod:`repro.obs.context`), so records from many
  processes merge into one causal tree;
* ``event("emergency_onset", cycle=812)`` logs one discrete occurrence
  and bumps the ``events_total`` counter;
* ``counter_inc`` / ``gauge_set`` / ``histogram_observe`` record into
  the process :class:`~repro.obs.registry.MetricsRegistry`;
* an optional background :class:`~repro.obs.profiler.ResourceProfiler`
  samples /proc and attributes RSS/CPU/IO to the open spans;
* live consumers (the ``/metrics`` HTTP endpoint in
  :mod:`repro.obs.serve`) subscribe to the record stream via
  :func:`add_subscriber`.

Worker processes run in *capture* mode (:func:`worker_mode`): span and
event records buffer in memory instead of hitting the parent's log file,
and :func:`drain_records` hands them to the executor, which ships them
back through the result channel for the parent to :func:`absorb`.
"""

from __future__ import annotations

import os
import threading
import time

from .context import TraceContext, new_span_id, new_trace_id
from .export import JsonlWriter, SpanCollector
from .registry import DEFAULT_BUCKETS, MetricsRegistry, diff_snapshots

__all__ = [
    "ENABLED",
    "Span",
    "absorb",
    "add_subscriber",
    "counter_inc",
    "current_span",
    "current_trace_id",
    "disable",
    "drain_records",
    "enable",
    "event",
    "finish",
    "gauge_set",
    "histogram_observe",
    "mode",
    "open_spans",
    "profile_interval",
    "propagation_context",
    "registry",
    "remove_subscriber",
    "set_trace_context",
    "span",
    "span_collector",
    "worker_mode",
]

#: Fast-path gate consulted by every instrumentation site.
ENABLED = False

#: Default JSONL log location when ``--obs jsonl`` gives no path.
DEFAULT_JSONL_PATH = "repro-obs.jsonl"

#: Default Chrome trace-event file for ``--obs chrome``.
DEFAULT_CHROME_PATH = "repro-trace.json"

#: Cap on buffered records in worker-capture mode and in the chrome
#: buffer (overflow is counted, not silently dropped).
CAPTURE_LIMIT = 100_000

_MODE = "off"
_REGISTRY = MetricsRegistry()
_COLLECTOR = SpanCollector()
_WRITER: JsonlWriter | None = None
_CAPTURE = False
_CAPTURED: list[dict] = []
_CHROME: list[dict] | None = None  # record buffer for the chrome exporter
_CHROME_PATH = DEFAULT_CHROME_PATH
_LOCAL = threading.local()
#: Every thread's live span stack, readable by the profiler thread.
_STACKS: dict[int, list] = {}
#: This process's trace id and the cross-process parent for root spans.
_TRACE_ID: str | None = None
_BOUNDARY_PARENT: str | None = None
#: Live record subscribers (the HTTP /events stream).
_SUBSCRIBERS: list = []
#: Resource-profiler state (interval 0 = off).
_PROFILE_INTERVAL = 0.0
_PROFILER = None


def registry() -> MetricsRegistry:
    """The live process registry (valid whether or not enabled)."""
    return _REGISTRY


def span_collector() -> SpanCollector:
    """The in-process per-span-name aggregation."""
    return _COLLECTOR


def mode() -> str:
    """The active exporter mode (``off`` when disabled)."""
    return _MODE


def profile_interval() -> float:
    """The live resource-profiler sampling interval (0 when off)."""
    return _PROFILE_INTERVAL


def enable(
    mode: str = "summary",
    path: str | None = None,
    profile_interval: float = 0.0,
) -> None:
    """Turn observability on, resetting any previous run's state.

    ``mode`` selects the exporter: ``summary`` (console table at
    :func:`finish`), ``jsonl`` (stream records to ``path``), ``prom``
    (Prometheus text dump at :func:`finish`) or ``chrome`` (a Chrome
    trace-event JSON file at ``path``, viewable in Perfetto).
    ``profile_interval`` > 0 starts the background resource profiler at
    that sampling period (seconds).
    """
    global ENABLED, _MODE, _WRITER, _CAPTURE, _CHROME, _CHROME_PATH
    global _TRACE_ID, _PROFILE_INTERVAL
    if mode not in ("summary", "jsonl", "prom", "chrome"):
        raise ValueError(f"unknown obs mode {mode!r}")
    disable()
    _MODE = mode
    _CAPTURE = False
    if mode == "jsonl":
        _WRITER = JsonlWriter(path or DEFAULT_JSONL_PATH)
    elif mode == "chrome":
        _CHROME = []
        _CHROME_PATH = path or DEFAULT_CHROME_PATH
    _TRACE_ID = new_trace_id()
    ENABLED = True
    _PROFILE_INTERVAL = max(float(profile_interval or 0.0), 0.0)
    if _PROFILE_INTERVAL > 0:
        _start_profiler(_PROFILE_INTERVAL)


def worker_mode(enabled: bool, profile_interval: float = 0.0) -> None:
    """Configure a pool worker: capture records, never touch the log.

    Called at the top of every worker job.  After a ``fork`` the child
    inherits the parent's writer handle and subscribers; buffering
    instead of writing keeps the JSONL file single-writer, and dropping
    the subscribers keeps the parent's HTTP stream single-producer.
    The boundary context (where this worker's root spans hang) arrives
    per job via :func:`set_trace_context`.
    """
    global ENABLED, _WRITER, _CAPTURE, _CHROME, _PROFILE_INTERVAL
    _stop_profiler()  # a forked child inherits a dead profiler thread
    _WRITER = None
    _CHROME = None
    _SUBSCRIBERS.clear()
    _CAPTURE = bool(enabled)
    ENABLED = bool(enabled)
    _PROFILE_INTERVAL = max(float(profile_interval or 0.0), 0.0)
    if ENABLED and _PROFILE_INTERVAL > 0:
        _start_profiler(_PROFILE_INTERVAL)


def disable() -> None:
    """Turn observability off and drop all recorded state."""
    global ENABLED, _MODE, _WRITER, _CAPTURE, _CHROME
    global _TRACE_ID, _BOUNDARY_PARENT, _PROFILE_INTERVAL
    ENABLED = False
    _MODE = "off"
    _stop_profiler()
    if _WRITER is not None:
        _WRITER.close()
        _WRITER = None
    _CAPTURE = False
    _CAPTURED.clear()
    _CHROME = None
    _SUBSCRIBERS.clear()
    _REGISTRY.reset()
    _COLLECTOR.reset()
    _LOCAL.stack = []
    _STACKS.clear()
    _TRACE_ID = None
    _BOUNDARY_PARENT = None
    _PROFILE_INTERVAL = 0.0


def _start_profiler(interval_s: float) -> None:
    global _PROFILER
    from .profiler import ResourceProfiler

    _PROFILER = ResourceProfiler(interval_s)
    _PROFILER.start()


def _stop_profiler() -> None:
    global _PROFILER
    if _PROFILER is not None:
        _PROFILER.stop()
        _PROFILER = None


def finish() -> str | None:
    """Flush the active exporter and disable; returns text to print.

    ``summary`` returns the console table, ``prom`` the Prometheus text
    dump, ``jsonl`` a one-line pointer at the written log (after
    appending one ``metric`` record per series, so the log alone can
    reproduce every final total), ``chrome`` a pointer at the written
    trace-event file.
    """
    from .export import summary_table, write_chrome_trace

    out: str | None = None
    if ENABLED:
        _stop_profiler()  # flush the last sample before exporting
        if _MODE == "summary":
            out = summary_table(_COLLECTOR, _REGISTRY)
        elif _MODE == "prom":
            out = _REGISTRY.to_prometheus()
        elif _MODE == "jsonl" and _WRITER is not None:
            for record in _metric_records():
                _WRITER.write(record)
            out = (
                f"observability log: {_WRITER.path} "
                f"({_WRITER.records} records) — "
                f"render with `repro obs report {_WRITER.path}`"
            )
        elif _MODE == "chrome" and _CHROME is not None:
            count = write_chrome_trace(_CHROME, _CHROME_PATH)
            out = (
                f"chrome trace: {_CHROME_PATH} ({count} events) — "
                f"open in Perfetto (https://ui.perfetto.dev) or "
                f"chrome://tracing"
            )
    disable()
    return out


def _metric_records() -> list[dict]:
    """One JSONL record per metric series (final totals)."""
    records = []
    now = time.time()
    for name, family in _REGISTRY.snapshot().items():
        for key, value in family["series"].items():
            records.append(
                {
                    "type": "metric",
                    "t": now,
                    "name": name,
                    "kind": family["kind"],
                    "labels": dict(key),
                    "value": value,
                }
            )
    return records


def _emit(record: dict) -> None:
    if _WRITER is not None:
        _WRITER.write(record)
    elif _CAPTURE:
        if len(_CAPTURED) < CAPTURE_LIMIT:
            _CAPTURED.append(record)
        else:
            _REGISTRY.counter(
                "obs_records_dropped_total",
                "records dropped by the worker capture buffer cap",
            ).inc()
    elif _CHROME is not None:
        if len(_CHROME) < CAPTURE_LIMIT:
            _CHROME.append(record)
        else:
            _REGISTRY.counter(
                "obs_records_dropped_total",
                "records dropped by the worker capture buffer cap",
            ).inc()
    for subscriber in _SUBSCRIBERS:
        try:
            subscriber(record)
        except Exception:  # a broken consumer must never kill the run
            pass


def add_subscriber(fn) -> None:
    """Register a live record consumer (called with every record dict)."""
    if fn not in _SUBSCRIBERS:
        _SUBSCRIBERS.append(fn)


def remove_subscriber(fn) -> None:
    """Unregister a record consumer registered via :func:`add_subscriber`."""
    if fn in _SUBSCRIBERS:
        _SUBSCRIBERS.remove(fn)


def drain_records() -> list[dict]:
    """Take (and clear) the worker-captured span/event records."""
    records = list(_CAPTURED)
    _CAPTURED.clear()
    return records


def snapshot_delta(before: dict) -> dict:
    """Registry delta since ``before`` (see :func:`diff_snapshots`)."""
    return diff_snapshots(before, _REGISTRY.snapshot())


def absorb(delta: dict | None, records: list[dict] | None) -> None:
    """Fold a worker's metric delta and captured records into this process.

    Call only with payloads produced in *another* process — the caller
    checks the producing PID so inline execution is never double-counted.
    """
    if not ENABLED:
        return
    if delta:
        peaks = delta.get("job_peak_rss_bytes")
        if peaks:
            # peak gauges merge max-wise: a retried job that used less
            # memory must not lower the recorded peak (gauge merge is
            # otherwise last-writer-wins)
            gauge = _REGISTRY.gauge("job_peak_rss_bytes", peaks.get("help", ""))
            delta = dict(delta)
            delta["job_peak_rss_bytes"] = dict(
                peaks,
                series={
                    key: max(value, gauge.value(**dict(key)) or 0.0)
                    for key, value in peaks["series"].items()
                },
            )
        _REGISTRY.merge(delta)
    for record in records or ():
        if record.get("type") == "span":
            _COLLECTOR.add(
                record["name"],
                record.get("wall_s", 0.0),
                record.get("cpu_s", 0.0),
                record.get("rss_peak_bytes", 0),
            )
        _emit(record)


# -- trace context -------------------------------------------------------------


def current_trace_id() -> str | None:
    """This process's active trace id (``None`` when disabled)."""
    return _TRACE_ID


def set_trace_context(wire) -> None:
    """Adopt a cross-process :class:`~repro.obs.context.TraceContext`.

    Called by a pool worker with the ``(trace_id, parent_span_id)`` wire
    tuple that arrived with a dispatched job: subsequent root spans (the
    worker's ``pipeline.job``) parent on the supervisor-side span instead
    of floating free.
    """
    global _TRACE_ID, _BOUNDARY_PARENT
    ctx = TraceContext.from_wire(wire)
    if ctx.trace_id is not None:
        _TRACE_ID = ctx.trace_id
    _BOUNDARY_PARENT = ctx.parent_span_id


def propagation_context() -> tuple[str | None, str | None] | None:
    """The wire context a dispatcher ships with a job (``None`` when off).

    The parent span id is the innermost open span of the calling thread
    — for the executor, the ``pipeline.batch`` span — so everything the
    receiving process records hangs off it.
    """
    if not ENABLED:
        return None
    parent = current_span()
    return TraceContext(
        trace_id=_TRACE_ID,
        parent_span_id=parent.span_id if parent is not None else None,
    ).to_wire()


# -- spans ---------------------------------------------------------------------


def _stack() -> list:
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = _LOCAL.stack = []
    # (re-)register every call: disable() swaps the list object out, and
    # a dict store under the GIL is cheap and idempotent
    _STACKS[threading.get_ident()] = stack
    return stack


def open_spans() -> list:
    """Every live span in the process, outermost first per thread.

    Read by the resource-profiler thread to attribute a sample to the
    spans open at sampling time.  Thread-safe to *read* under the GIL
    (list append/pop are atomic); the snapshot may be one span stale,
    which is fine for sampling.
    """
    out = []
    for stack in list(_STACKS.values()):
        out.extend(stack)
    return out


class Span:
    """One timed, attributed, nestable block of work."""

    __slots__ = (
        "name",
        "attrs",
        "children",
        "depth",
        "parent_name",
        "trace_id",
        "span_id",
        "parent_id",
        "t_start",
        "wall_s",
        "cpu_s",
        "rss_peak",
        "_cpu_start",
    )

    def __init__(self, name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs
        self.children: list[Span] = []
        self.depth = 0
        self.parent_name: str | None = None
        self.trace_id: str | None = None
        self.span_id: str | None = None
        self.parent_id: str | None = None
        self.t_start = 0.0
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self.rss_peak = 0  # peak RSS bytes sampled while open (profiler)
        self._cpu_start = 0.0

    def set(self, **attrs) -> None:
        """Attach attributes mid-flight (e.g. a result count)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        global _TRACE_ID
        if _TRACE_ID is None:
            _TRACE_ID = new_trace_id()
        self.trace_id = _TRACE_ID
        self.span_id = new_span_id()
        stack = _stack()
        if stack:
            parent = stack[-1]
            self.depth = parent.depth + 1
            self.parent_name = parent.name
            self.parent_id = parent.span_id
            parent.children.append(self)
        else:
            self.parent_id = _BOUNDARY_PARENT
        stack.append(self)
        self.t_start = time.time()
        self._cpu_start = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.cpu_s = time.process_time() - self._cpu_start
        self.wall_s = max(time.time() - self.t_start, 0.0)
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        if not ENABLED:  # disabled mid-span: drop silently
            return
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        _COLLECTOR.add(self.name, self.wall_s, self.cpu_s, self.rss_peak)
        _REGISTRY.counter(
            "spans_total", "spans completed, by span name"
        ).inc(name=self.name)
        record = {
            "type": "span",
            "t": self.t_start,
            "name": self.name,
            "attrs": self.attrs,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "depth": self.depth,
            "parent": self.parent_name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
        }
        if self.rss_peak:
            record["rss_peak_bytes"] = int(self.rss_peak)
        _emit(record)

    def tree(self, indent: int = 0) -> str:
        """Render this span's subtree, one line per span."""
        lines = [f"{'  ' * indent}{self.name} {self.wall_s * 1e3:.2f} ms"]
        for child in self.children:
            lines.append(child.tree(indent + 1))
        return "\n".join(lines)


class _NullSpan:
    """The shared disabled-mode span: every operation is a no-op."""

    __slots__ = ()
    name = ""
    attrs: dict = {}
    children: list = []
    wall_s = 0.0
    cpu_s = 0.0
    rss_peak = 0
    trace_id: str | None = None
    span_id: str | None = None
    parent_id: str | None = None

    def set(self, **attrs) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    def tree(self, indent: int = 0) -> str:
        return ""


_NULL_SPAN = _NullSpan()


def span(name: str, **attrs):
    """Context manager timing one named block (no-op when disabled)."""
    if not ENABLED:
        return _NULL_SPAN
    return Span(name, attrs)


def current_span():
    """The innermost live span of this thread, or ``None``."""
    stack = getattr(_LOCAL, "stack", None)
    return stack[-1] if stack else None


# -- events and metric helpers -------------------------------------------------


def event(name: str, **attrs) -> None:
    """Log one discrete occurrence (emergency onset, actuation, ...)."""
    if not ENABLED:
        return
    _REGISTRY.counter("events_total", "discrete events by name").inc(
        event=name
    )
    _emit(
        {
            "type": "event",
            "t": time.time(),
            "name": name,
            "attrs": attrs,
            "trace_id": _TRACE_ID,
            "pid": os.getpid(),
        }
    )


def counter_inc(name: str, value: float = 1.0, help: str = "", **labels) -> None:
    """Bump a counter (no-op when disabled)."""
    if not ENABLED:
        return
    _REGISTRY.counter(name, help).inc(value, **labels)


def gauge_set(name: str, value: float, help: str = "", **labels) -> None:
    """Set a gauge (no-op when disabled)."""
    if not ENABLED:
        return
    _REGISTRY.gauge(name, help).set(value, **labels)


def histogram_observe(
    name: str,
    value: float,
    help: str = "",
    buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    **labels,
) -> None:
    """Record one histogram sample (no-op when disabled)."""
    if not ENABLED:
        return
    _REGISTRY.histogram(name, help, buckets=buckets).observe(value, **labels)

"""Continuous resource profiler: a /proc sampler attributing to open spans.

A :class:`ResourceProfiler` is a daemon thread that wakes every
``interval_s`` seconds and reads this process's resource counters:

* RSS from ``/proc/self/statm`` (page count × page size),
* cumulative user+system CPU seconds from ``/proc/self/stat``,
* cumulative read/write bytes from ``/proc/self/io``;

falling back to :func:`resource.getrusage` where /proc is absent (the
IO counters then read 0).  Each tick it

* updates ``rss_peak`` on every currently-open span (via
  :func:`repro.obs.trace.open_spans`), so per-span records and the
  per-stage summary carry the peak RSS observed *while that span ran*;
* maintains the ``process_rss_bytes`` / ``process_rss_peak_bytes`` /
  ``process_cpu_seconds_total`` / ``process_io_read_bytes_total`` /
  ``process_io_write_bytes_total`` metrics, and a per-job
  ``job_peak_rss_bytes{job=...}`` gauge keyed on the open
  ``pipeline.job`` span's benchmark;
* emits a ``sample`` record into the normal record stream (JSONL log,
  worker capture buffer, chrome counter track, live subscribers).

The supervisor runs one profiler; every pool worker runs its own
(:func:`repro.obs.trace.worker_mode` starts it), and the worker's
samples and gauge peaks merge back through the existing metric-delta /
record-capture channel — ``job_peak_rss_bytes`` merges max-wise, so the
supervisor's live ``/metrics`` shows each job's true peak across
processes.

Sampling is wait-free for the traced code: the profiler only *reads*
the span stacks (safe under the GIL) and writes span attributes and
registry series the traced thread never iterates.
"""

from __future__ import annotations

import os
import threading
import time

__all__ = ["ResourceProfiler", "read_resources"]

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def _clock_ticks() -> float:
    try:
        return float(os.sysconf("SC_CLK_TCK"))
    except (AttributeError, ValueError, OSError):
        return 100.0


def read_resources() -> dict:
    """One sample of this process's resource counters.

    Returns ``{"rss_bytes", "cpu_s", "read_bytes", "write_bytes"}`` —
    cumulative since process start except ``rss_bytes`` (instantaneous).
    Works from /proc; degrades to ``resource.getrusage`` (no IO counters)
    elsewhere.
    """
    sample = {"rss_bytes": 0, "cpu_s": 0.0, "read_bytes": 0, "write_bytes": 0}
    try:
        with open("/proc/self/statm", "rb") as fh:
            sample["rss_bytes"] = int(fh.read().split()[1]) * _PAGE_SIZE
        with open("/proc/self/stat", "rb") as fh:
            # fields 14/15 (utime/stime) counted after the parenthesised
            # comm field, which may itself contain spaces
            after_comm = fh.read().rsplit(b")", 1)[1].split()
            utime, stime = int(after_comm[11]), int(after_comm[12])
            sample["cpu_s"] = (utime + stime) / _clock_ticks()
    except (OSError, IndexError, ValueError):
        try:
            import resource

            usage = resource.getrusage(resource.RUSAGE_SELF)
            # ru_maxrss is KiB on Linux, bytes on macOS; Linux-first here
            sample["rss_bytes"] = int(usage.ru_maxrss) * 1024
            sample["cpu_s"] = usage.ru_utime + usage.ru_stime
        except Exception:
            pass
    try:
        with open("/proc/self/io", "rb") as fh:
            for line in fh:
                if line.startswith(b"read_bytes:"):
                    sample["read_bytes"] = int(line.split()[1])
                elif line.startswith(b"write_bytes:"):
                    sample["write_bytes"] = int(line.split()[1])
    except (OSError, IndexError, ValueError):
        pass
    return sample


class ResourceProfiler:
    """Background /proc sampler bound to this process's obs state."""

    def __init__(self, interval_s: float) -> None:
        self.interval_s = max(float(interval_s), 0.001)
        self.samples = 0
        self.rss_peak = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-profiler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the sampler; takes one final sample so short spans see
        at least one attribution."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=max(self.interval_s * 4, 1.0))
        self._thread = None
        self.sample_once(emit=False)

    def _run(self) -> None:
        # one immediate sample, then the periodic loop
        self.sample_once()
        while not self._stop.wait(self.interval_s):
            self.sample_once()

    def sample_once(self, emit: bool = True) -> dict:
        """Take and record one sample (also callable synchronously)."""
        from . import trace

        sample = read_resources()
        rss = sample["rss_bytes"]
        self.samples += 1
        self.rss_peak = max(self.rss_peak, rss)
        if not trace.ENABLED:
            return sample

        job_names = []
        for open_span in trace.open_spans():
            if rss > open_span.rss_peak:
                open_span.rss_peak = rss
            if open_span.name == "pipeline.job":
                job = open_span.attrs.get("benchmark")
                if job is not None:
                    job_names.append(str(job))

        registry = trace.registry()
        registry.gauge(
            "process_rss_bytes", "sampled resident set size"
        ).set(rss)
        registry.gauge(
            "process_rss_peak_bytes", "peak sampled resident set size"
        ).set(self.rss_peak)
        registry.gauge(
            "process_cpu_seconds_total", "sampled cumulative CPU seconds"
        ).set(sample["cpu_s"])
        registry.gauge(
            "process_io_read_bytes_total", "sampled cumulative read bytes"
        ).set(sample["read_bytes"])
        registry.gauge(
            "process_io_write_bytes_total", "sampled cumulative write bytes"
        ).set(sample["write_bytes"])
        registry.counter(
            "profiler_samples_total", "resource-profiler ticks"
        ).inc()
        peak_gauge = registry.gauge(
            "job_peak_rss_bytes", "peak sampled RSS per job benchmark"
        )
        for job in job_names:
            # max-tracking: a gauge only remembers its last set, so keep
            # the running peak explicit
            if rss > (peak_gauge.value(job=job) or 0):
                peak_gauge.set(rss, job=job)

        if emit:
            trace._emit(
                {
                    "type": "sample",
                    "t": time.time(),
                    "rss_bytes": rss,
                    "cpu_s": sample["cpu_s"],
                    "read_bytes": sample["read_bytes"],
                    "write_bytes": sample["write_bytes"],
                    "open_spans": [s.name for s in trace.open_spans()],
                    "trace_id": trace.current_trace_id(),
                    "pid": os.getpid(),
                }
            )
        return sample

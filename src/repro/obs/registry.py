"""Metrics registry: counters, gauges and histograms with labels.

A :class:`MetricsRegistry` owns every metric family recorded during a
run.  Families are identified by name; each family holds one series per
distinct label set, so ``cache_hits_total{stage="simulate"}`` and
``cache_hits_total{stage="voltage"}`` accumulate independently but
export together.

Everything is plain Python and lock-protected, so the registry is safe
to share between threads.  Child *processes* cannot share it — instead a
worker snapshots its registry before and after a unit of work
(:meth:`MetricsRegistry.snapshot`, :func:`diff_snapshots`) and ships the
delta back through the pipeline executor's result channel, where the
parent folds it in with :meth:`MetricsRegistry.merge`.  Counters and
histograms merge additively; gauges take the incoming sample (last
writer wins, which matches their "current value" semantics).
"""

from __future__ import annotations

import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "diff_snapshots",
    "exponential_buckets",
]


def exponential_buckets(
    start: float, factor: float, count: int
) -> tuple[float, ...]:
    """``count`` ascending bucket upper bounds growing by ``factor``."""
    if start <= 0:
        raise ValueError("start must be positive")
    if factor <= 1:
        raise ValueError("factor must exceed 1")
    if count < 1:
        raise ValueError("count must be at least 1")
    return tuple(start * factor**i for i in range(count))


#: Default histogram edges: 10 us .. ~3 min, one bucket per 4x of latency.
DEFAULT_BUCKETS = exponential_buckets(1e-5, 4.0, 12)


def _label_key(labels: dict) -> tuple[tuple[str, str], ...]:
    """Canonical, hashable form of a label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Metric:
    """Shared label-series bookkeeping for every metric kind."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._series: dict[tuple, object] = {}

    def labels(self) -> list[tuple[tuple[str, str], ...]]:
        """Every label set this family has seen, sorted."""
        return sorted(self._series)

    def value(self, **labels):
        """The current value for one label set (0/None if unseen)."""
        raise NotImplementedError


class Counter(_Metric):
    """Monotonically increasing count, e.g. cache hits."""

    kind = "counter"

    def inc(self, value: float = 1.0, **labels) -> None:
        if value < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + value

    def value(self, **labels) -> float:
        return float(self._series.get(_label_key(labels), 0.0))


class Gauge(_Metric):
    """Point-in-time value, e.g. the live engagement rate."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        self._series[_label_key(labels)] = float(value)

    def value(self, **labels) -> float | None:
        v = self._series.get(_label_key(labels))
        return None if v is None else float(v)


class Histogram(_Metric):
    """Distribution with exponential buckets, e.g. stage latency."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        edges = tuple(float(b) for b in buckets)
        if list(edges) != sorted(set(edges)):
            raise ValueError("bucket edges must be strictly ascending")
        if not edges:
            raise ValueError("need at least one bucket edge")
        self.buckets = edges

    def _state(self, key) -> dict:
        state = self._series.get(key)
        if state is None:
            state = {
                "count": 0,
                "sum": 0.0,
                # one slot per finite edge plus the +Inf overflow slot
                "counts": [0] * (len(self.buckets) + 1),
            }
            self._series[key] = state
        return state

    def observe(self, value: float, **labels) -> None:
        state = self._state(_label_key(labels))
        state["count"] += 1
        state["sum"] += float(value)
        for i, edge in enumerate(self.buckets):
            if value <= edge:
                state["counts"][i] += 1
                return
        state["counts"][-1] += 1

    def value(self, **labels) -> dict | None:
        """``{"count", "sum", "counts"}`` for one label set."""
        state = self._series.get(_label_key(labels))
        if state is None:
            return None
        return {
            "count": state["count"],
            "sum": state["sum"],
            "counts": list(state["counts"]),
        }


class MetricsRegistry:
    """All metric families of one process, thread-safe."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Metric] = {}

    def _family(self, name: str, cls, **kwargs):
        with self._lock:
            metric = self._families.get(name)
            if metric is None:
                metric = cls(name, **kwargs)
                self._families[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"{name!r} already registered as {metric.kind}"
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._family(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._family(name, Gauge, help=help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._family(name, Histogram, help=help, buckets=buckets)

    def families(self) -> list[_Metric]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def reset(self) -> None:
        with self._lock:
            self._families.clear()

    # -- cross-process transport ----------------------------------------------

    def snapshot(self) -> dict:
        """The registry as a plain picklable dict."""
        out: dict = {}
        with self._lock:
            for name, metric in self._families.items():
                series = {}
                for key, value in metric._series.items():
                    series[key] = (
                        dict(value, counts=list(value["counts"]))
                        if metric.kind == "histogram"
                        else value
                    )
                out[name] = {
                    "kind": metric.kind,
                    "help": metric.help,
                    "series": series,
                }
                if metric.kind == "histogram":
                    out[name]["buckets"] = metric.buckets
        return out

    def merge(self, snapshot: dict) -> None:
        """Fold a snapshot (usually a worker's delta) into this registry.

        Counters and histogram slots add; gauges take the incoming value.
        """
        for name, family in snapshot.items():
            kind = family["kind"]
            if kind == "counter":
                metric = self.counter(name, family.get("help", ""))
                for key, value in family["series"].items():
                    metric.inc(value, **dict(key))
            elif kind == "gauge":
                metric = self.gauge(name, family.get("help", ""))
                for key, value in family["series"].items():
                    metric.set(value, **dict(key))
            elif kind == "histogram":
                metric = self.histogram(
                    name,
                    family.get("help", ""),
                    buckets=tuple(family.get("buckets", DEFAULT_BUCKETS)),
                )
                for key, value in family["series"].items():
                    state = metric._state(tuple(key))
                    state["count"] += value["count"]
                    state["sum"] += value["sum"]
                    for i, c in enumerate(value["counts"]):
                        state["counts"][i] += c
            else:  # pragma: no cover - future kinds
                raise ValueError(f"unknown metric kind {kind!r}")

    # -- export ----------------------------------------------------------------

    def to_prometheus(self, prefix: str = "repro_") -> str:
        """The registry in Prometheus text exposition format."""
        lines: list[str] = []
        for metric in self.families():
            name = prefix + metric.name
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            for key in metric.labels():
                value = metric._series[key]
                if metric.kind == "histogram":
                    cumulative = 0
                    for edge, c in zip(metric.buckets, value["counts"]):
                        cumulative += c
                        labels = _prom_labels(key + (("le", _prom_float(edge)),))
                        lines.append(f"{name}_bucket{labels} {cumulative}")
                    cumulative += value["counts"][-1]
                    labels = _prom_labels(key + (("le", "+Inf"),))
                    lines.append(f"{name}_bucket{labels} {cumulative}")
                    lines.append(
                        f"{name}_sum{_prom_labels(key)} {value['sum']:.9g}"
                    )
                    lines.append(
                        f"{name}_count{_prom_labels(key)} {value['count']}"
                    )
                else:
                    lines.append(
                        f"{name}{_prom_labels(key)} "
                        f"{_prom_float(float(value))}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


def _prom_float(value: float) -> str:
    """Compact float formatting matching Prometheus conventions."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.9g}"


def _prom_labels(key: tuple[tuple[str, str], ...]) -> str:
    if not key:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in sorted(key))
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def diff_snapshots(before: dict, after: dict) -> dict:
    """The delta from ``before`` to ``after`` (a worker's contribution).

    Counter and histogram series subtract; gauge series keep the
    ``after`` value.  Series absent from ``before`` pass through whole;
    series that did not change are dropped, keeping the pickled payload
    small.
    """
    delta: dict = {}
    for name, family in after.items():
        old = before.get(name, {"series": {}})
        series: dict = {}
        for key, value in family["series"].items():
            prev = old["series"].get(key)
            if family["kind"] == "counter":
                changed = value - (prev or 0.0)
                if changed:
                    series[key] = changed
            elif family["kind"] == "gauge":
                if prev is None or prev != value:
                    series[key] = value
            else:  # histogram
                if prev is None:
                    series[key] = dict(value, counts=list(value["counts"]))
                elif value["count"] != prev["count"]:
                    series[key] = {
                        "count": value["count"] - prev["count"],
                        "sum": value["sum"] - prev["sum"],
                        "counts": [
                            a - b
                            for a, b in zip(value["counts"], prev["counts"])
                        ],
                    }
        if series:
            delta[name] = dict(family, series=series)
    return delta

"""Zero-dependency observability: metrics, tracing spans, event log.

The paper's methodology is *watching* a running system — per-cycle
current, voltage-emergency counts, actuation rates, per-scale wavelet
energy — and this package makes the repro observable the same way:

* a **metrics registry** (:class:`Counter`, :class:`Gauge`,
  :class:`Histogram` with exponential buckets, labeled series) that
  merges worker-process contributions back through the pipeline
  executor's result channel;
* **tracing spans** (``with span("stage.simulate", benchmark="gzip"):``)
  with wall/CPU time and nesting, wired through the pipeline, the
  microarchitectural simulator and the closed-loop controllers;
* an **event log** for discrete occurrences — voltage-emergency onsets,
  controller actuations;
* **exporters**: a JSONL record stream, a Prometheus text dump and an
  end-of-run console summary, selected by the ``repro --obs`` flag and
  rendered offline by ``repro obs report``.

Everything is gated on one module-level flag
(:data:`repro.obs.trace.ENABLED`), so instrumented code is no-op-cheap
when observability is off.  See ``docs/OBSERVABILITY.md``.
"""

from .export import JsonlWriter, SpanCollector, summary_table
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    exponential_buckets,
)
from .report import load_records, render_report
from .trace import (
    Span,
    absorb,
    counter_inc,
    current_span,
    disable,
    drain_records,
    enable,
    event,
    finish,
    gauge_set,
    histogram_observe,
    mode,
    registry,
    span,
    span_collector,
    worker_mode,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlWriter",
    "MetricsRegistry",
    "Span",
    "SpanCollector",
    "absorb",
    "counter_inc",
    "current_span",
    "diff_snapshots",
    "disable",
    "drain_records",
    "enable",
    "enabled",
    "event",
    "exponential_buckets",
    "finish",
    "gauge_set",
    "histogram_observe",
    "load_records",
    "mode",
    "registry",
    "render_report",
    "span",
    "span_collector",
    "summary_table",
    "worker_mode",
]


def enabled() -> bool:
    """Whether observability is currently on (the live flag)."""
    from . import trace

    return trace.ENABLED

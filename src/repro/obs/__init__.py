"""Zero-dependency observability: metrics, traces, profiling, live serving.

The paper's methodology is *watching* a running system — per-cycle
current, voltage-emergency counts, actuation rates, per-scale wavelet
energy — and this package makes the repro observable the same way:

* a **metrics registry** (:class:`Counter`, :class:`Gauge`,
  :class:`Histogram` with exponential buckets, labeled series) that
  merges worker-process contributions back through the pipeline
  executor's result channel;
* **tracing spans** (``with span("stage.simulate", benchmark="gzip"):``)
  with wall/CPU time, nesting and cross-process **trace context** — every
  batch gets a ``trace_id``, every span a ``span_id``/``parent_id`` that
  survive the supervisor→worker boundary, so a merged record stream
  rebuilds one causal tree per batch (:mod:`repro.obs.context`);
* an **event log** for discrete occurrences — voltage-emergency onsets,
  controller actuations, retries;
* a **continuous resource profiler**
  (:class:`~repro.obs.profiler.ResourceProfiler`) sampling /proc RSS,
  CPU and IO in the supervisor and each worker, attributing peaks to the
  open spans;
* **exporters**: a JSONL record stream, a Prometheus text dump, a Chrome
  trace-event file (Perfetto-viewable) and an end-of-run console
  summary, selected by the ``repro --obs`` flag and rendered offline by
  ``repro obs report`` / ``repro obs chrome``;
* a **live HTTP endpoint** (:class:`~repro.obs.serve.ObsServer`,
  ``--obs-listen HOST:PORT``) exposing ``/metrics``, ``/healthz`` and a
  streaming ``/events`` feed while a batch runs.

Everything is gated on one module-level flag
(:data:`repro.obs.trace.ENABLED`), so instrumented code is no-op-cheap
when observability is off.  See ``docs/OBSERVABILITY.md``.
"""

from .context import TraceContext, new_span_id, new_trace_id, span_tree
from .export import (
    JsonlWriter,
    SpanCollector,
    chrome_trace,
    summary_table,
    write_chrome_trace,
)
from .profiler import ResourceProfiler, read_resources
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    exponential_buckets,
)
from .report import (
    load_records,
    registry_from_records,
    render_report,
    scan_records,
)
from .serve import ObsServer, parse_listen
from .trace import (
    Span,
    absorb,
    add_subscriber,
    counter_inc,
    current_span,
    current_trace_id,
    disable,
    drain_records,
    enable,
    event,
    finish,
    gauge_set,
    histogram_observe,
    mode,
    open_spans,
    profile_interval,
    propagation_context,
    registry,
    remove_subscriber,
    set_trace_context,
    span,
    span_collector,
    worker_mode,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlWriter",
    "MetricsRegistry",
    "ObsServer",
    "ResourceProfiler",
    "Span",
    "SpanCollector",
    "TraceContext",
    "absorb",
    "add_subscriber",
    "chrome_trace",
    "counter_inc",
    "current_span",
    "current_trace_id",
    "diff_snapshots",
    "disable",
    "drain_records",
    "enable",
    "enabled",
    "event",
    "exponential_buckets",
    "finish",
    "gauge_set",
    "histogram_observe",
    "load_records",
    "mode",
    "new_span_id",
    "new_trace_id",
    "open_spans",
    "parse_listen",
    "profile_interval",
    "propagation_context",
    "read_resources",
    "registry",
    "registry_from_records",
    "remove_subscriber",
    "render_report",
    "scan_records",
    "set_trace_context",
    "span",
    "span_collector",
    "span_tree",
    "summary_table",
    "worker_mode",
    "write_chrome_trace",
]


def enabled() -> bool:
    """Whether observability is currently on (the live flag)."""
    from . import trace

    return trace.ENABLED

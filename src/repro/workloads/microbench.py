"""The dI/dt stressmark: a worst-case execution sequence (§3.1).

Commercial designers benchmark supply networks with hand-crafted
microbenchmarks [1]; ours alternates, at the supply's resonant half-period,
between a maximum-activity burst (independent FP/INT work saturating every
unit) and a dead stretch (one long serially-dependent chain that idles the
machine) — the instruction-level counterpart of the square-wave current
used by :func:`repro.power.worst_case_current`.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..uarch.isa import Instruction, OpClass

__all__ = ["stressmark_stream"]

_CODE_BASE = 0x0080_0000
_HOT_BASE = 0x1800_0000


def stressmark_stream(
    half_period_cycles: int,
    burst_ipc: float = 3.5,
    seed: int | np.random.Generator = 0,
) -> Iterator[Instruction]:
    """Alternating burst/dead instruction stream.

    Parameters
    ----------
    half_period_cycles:
        Half the supply's resonant period in cycles (15 at the default
        100 MHz resonance / 3 GHz clock).
    burst_ipc:
        Expected throughput during bursts, used to size the burst group so
        each burst lasts about one half-period.
    """
    if half_period_cycles < 1:
        raise ValueError("half_period_cycles must be positive")
    if burst_ipc <= 0:
        raise ValueError("burst_ipc must be positive")
    rng = (seed if isinstance(seed, np.random.Generator)
           else np.random.default_rng(seed))
    burst_len = max(1, int(round(half_period_cycles * burst_ipc)))
    chain = max(1, int(np.ceil(half_period_cycles / 4)))
    # The stressmark is a tight loop: PCs repeat so the front end streams
    # from the I-cache at full speed (a real hand-written kernel would).
    code_slots = burst_len + chain
    k = 0
    while True:
        # Burst: independent mixed work that fills all issue slots.
        for i in range(burst_len):
            op = (OpClass.IALU, OpClass.FPALU, OpClass.IALU, OpClass.LOAD)[i % 4]
            addr = _HOT_BASE + 8 * int(rng.integers(0, 512))
            pc = _CODE_BASE + 4 * (k % code_slots)
            k += 1
            yield Instruction(op, pc=pc, src1_dist=0, src2_dist=0, addr=addr)
        # Dead stretch: a serial chain of long-latency multiplies stalls
        # issue for about one half-period (each depends on the previous).
        for _ in range(chain):
            pc = _CODE_BASE + 4 * (k % code_slots)
            k += 1
            yield Instruction(OpClass.FPMULT, pc=pc, src1_dist=1)

"""Dynamic instruction stream generation from a workload profile.

Turns a :class:`~repro.workloads.spec.WorkloadProfile` into the lazy
sequence of :class:`~repro.uarch.isa.Instruction` objects the pipeline
consumes.  All randomness flows from one explicitly-passed
``numpy.random.Generator`` — there is no module-level RNG state anywhere
in this package — so a (benchmark, seed) pair always produces the
identical stream, and parallel pipeline workers simulating different
benchmarks can never perturb each other's draws: every experiment in the
repo is bit-reproducible regardless of worker count or execution order.

``seed`` arguments accept an ``int`` (seeds a fresh generator), an
existing ``numpy.random.Generator`` (used as-is, for callers that manage
streams via ``numpy.random.SeedSequence.spawn``), or ``None`` (the
profile's own seed).

Structure
---------
Code is modeled as *loop regions*: a region materializes a loop body
template (fixed PCs, a fixed op class per slot, fixed branch biases and
targets, a fixed memory region per access slot) and then executes it for a
number of trips.  Re-executing stable templates is what lets the branch
predictor, BTB and I-cache train, exactly as they would on real loops;
region changes and phase changes supply the program's time-varying
behaviour.

Address model
-------------
Three data regions drive the cache hierarchy: a *hot* set sized to live in
the L1 (random touches), a *warm* set walked sequentially so it lives in
the L2 but thrashes the L1, and a *cold* streaming region advancing a full
line per access so every touch misses the L2 — the knob that turns a
profile into an mcf/art-style memory-bound benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..uarch.isa import Instruction, OpClass
from .phases import PhaseScheduler
from .spec import PhaseSpec, WorkloadProfile, get_profile

__all__ = [
    "InstructionGenerator",
    "generate",
    "instruction_stream",
    "prewarm_caches",
]

_LINE = 64
_CODE_BASE = 0x0040_0000
_COLD_CODE_BASE = 0x00C0_0000
_HOT_BASE = 0x1000_0000
_WARM_BASE = 0x2000_0000
_COLD_BASE = 0x4000_0000

# Memory-region tags used by body templates.
_HOT, _WARM, _COLD = 0, 1, 2


@dataclass(frozen=True)
class _Slot:
    """One static instruction of a loop body."""

    op: OpClass
    src1: int
    src2: int
    mem_region: int = _HOT  # loads/stores only
    branch_bias: float = 0.0  # conditional branches only
    pattern_period: int = 0  # >0: periodic branch (taken every Nth time)
    target_offset: int = 0  # taken-branch displacement (instructions)


def _resolve_rng(
    profile: WorkloadProfile,
    seed: int | np.random.Generator | None,
) -> np.random.Generator:
    """One generator per stream: explicit Generator > int seed > profile."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(profile.seed if seed is None else seed)


class InstructionGenerator:
    """Iterator of dynamic instructions for one workload profile."""

    def __init__(
        self,
        profile: WorkloadProfile,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.profile = profile
        self._rng = _resolve_rng(profile, seed)
        self._phases = PhaseScheduler(profile.phases, self._rng)
        self._cold_ptr = _COLD_BASE
        self._cold_code_ptr = _COLD_CODE_BASE
        self._warm_ptr = _WARM_BASE
        self._hot_slots = max(1, profile.hot_bytes // 8)
        self._warm_limit = _WARM_BASE + profile.warm_bytes
        self._branch_counters: dict[int, int] = {}

    # -- template construction -------------------------------------------------

    def _build_body(self, phase: PhaseSpec) -> list[_Slot]:
        """Materialize a loop body for the current phase."""
        rng = self._rng
        max_body = max(6, min(384, int(phase.duration // 2)))
        body_len = int(rng.integers(max(4, max_body // 2), max_body + 1))
        return self._build_segment(phase, body_len)

    def _build_segment(self, phase: PhaseSpec, body_len: int) -> list[_Slot]:
        """``body_len`` static instructions drawn from one phase's mix."""
        rng = self._rng
        slots: list[_Slot] = []
        for _ in range(body_len):
            serial = rng.random() < phase.serial
            src1 = 1 if serial else int(min(rng.geometric(0.25), 16))
            src2 = 0 if rng.random() < 0.5 else int(min(rng.geometric(0.22), 16))
            r = rng.random()
            if r < phase.load_fraction or r < (
                phase.load_fraction + phase.store_fraction
            ):
                is_load = r < phase.load_fraction
                q = rng.random()
                if q < phase.cold:
                    region = _COLD
                    # Streaming accesses are address-independent unless the
                    # phase is serial (pointer chasing, mcf-style), so
                    # misses can overlap (memory-level parallelism).
                    if not serial:
                        src1 = 0
                elif q < phase.cold + phase.warm:
                    region = _WARM
                else:
                    region = _HOT
                slots.append(
                    _Slot(
                        OpClass.LOAD if is_load else OpClass.STORE,
                        src1,
                        src2 if not is_load else 0,
                        mem_region=region,
                    )
                )
                continue
            r -= phase.load_fraction + phase.store_fraction
            if r < phase.branch_fraction:
                kind = rng.random()
                bias = 0.0
                period = 0
                if kind < phase.hard_branch:
                    bias = 0.5  # data-dependent branch: a coin flip
                elif kind < phase.hard_branch + phase.pattern_branch:
                    # Periodic branch: taken every Nth execution.
                    period = int(rng.integers(2, 5))
                else:
                    bias = float(rng.uniform(*phase.easy_bias))
                # Branches hang off a recent compare, so they resolve fast.
                slots.append(
                    _Slot(
                        OpClass.BRANCH,
                        min(src1, 4),
                        0,
                        branch_bias=bias,
                        pattern_period=period,
                        target_offset=int(rng.integers(2, 24)),
                    )
                )
                continue
            if rng.random() < phase.fp_fraction:
                q = rng.random()
                if q < phase.div_fraction:
                    op = OpClass.FPDIV
                elif q < phase.div_fraction + phase.mult_fraction:
                    op = OpClass.FPMULT
                else:
                    op = OpClass.FPALU
            else:
                q = rng.random()
                if q < phase.div_fraction:
                    op = OpClass.IDIV
                elif q < phase.div_fraction + phase.mult_fraction:
                    op = OpClass.IMULT
                else:
                    op = OpClass.IALU
            slots.append(_Slot(op, src1, src2))
        return slots

    # -- dynamic instantiation ---------------------------------------------------

    def _address_for(self, region: int) -> int:
        if region == _COLD:
            self._cold_ptr += _LINE
            return self._cold_ptr
        if region == _WARM:
            # Sequential walk: L2-resident, L1-thrashing once warmed.
            self._warm_ptr += 8
            if self._warm_ptr >= self._warm_limit:
                self._warm_ptr = _WARM_BASE
            return self._warm_ptr
        return _HOT_BASE + 8 * int(self._rng.integers(0, self._hot_slots))

    def _instantiate(self, slot: _Slot, pc: int) -> Instruction:
        if slot.op in (OpClass.LOAD, OpClass.STORE):
            return Instruction(
                slot.op,
                pc=pc,
                src1_dist=slot.src1,
                src2_dist=slot.src2,
                addr=self._address_for(slot.mem_region),
            )
        if slot.op is OpClass.BRANCH:
            if slot.pattern_period:
                count = self._branch_counters.get(pc, 0)
                self._branch_counters[pc] = count + 1
                taken = count % slot.pattern_period == 0
            else:
                taken = bool(self._rng.random() < slot.branch_bias)
            return Instruction(
                OpClass.BRANCH,
                pc=pc,
                src1_dist=slot.src1,
                addr=pc + 4 * slot.target_offset,
                taken=taken,
            )
        return Instruction(
            slot.op, pc=pc, src1_dist=slot.src1, src2_dist=slot.src2
        )

    # -- stream ---------------------------------------------------------------

    def __iter__(self) -> Iterator[Instruction]:
        return self._generate()

    def _generate(self) -> Iterator[Instruction]:
        # Benchmarks whose phases are all shorter than a loop region are
        # loop-nest codes (mgrid-style): the burst/stall alternation lives
        # *inside* one loop body, so the body is a composite of all phase
        # segments and repeats coherently — that is what concentrates
        # current energy at the loop period (the resonance pump).
        if all(ph.duration <= 256 for ph in self.profile.phases):
            yield from self._generate_composite()
        else:
            yield from self._generate_phased()

    def _generate_composite(self) -> Iterator[Instruction]:
        prof = self.profile
        rng = self._rng
        code_slots = max(64, prof.code_bytes // 4)
        while True:
            body: list[_Slot] = []
            for ph in prof.phases:
                body.extend(self._build_segment(ph, max(1, int(ph.duration))))
            loop_start = _CODE_BASE + 4 * int(
                rng.integers(0, max(1, code_slots - len(body) - 1))
            )
            back_pc = loop_start + 4 * len(body)
            trips = int(rng.geometric(1.0 / 192.0))
            for trip in range(trips):
                for k, slot in enumerate(body):
                    yield self._instantiate(slot, loop_start + 4 * k)
                yield Instruction(
                    OpClass.BRANCH,
                    pc=back_pc,
                    src1_dist=0,
                    addr=loop_start,
                    taken=trip != trips - 1,
                )

    def _generate_phased(self) -> Iterator[Instruction]:
        prof = self.profile
        rng = self._rng
        code_slots = max(64, prof.code_bytes // 4)
        while True:
            phase = self._phases.current
            body = self._build_body(phase)
            if rng.random() < prof.cold_code:
                # Excursion into never-before-seen code: I-cache misses.
                self._cold_code_ptr += 4 * len(body) + _LINE
                loop_start = self._cold_code_ptr
                trips = int(rng.integers(1, 4))
            else:
                loop_start = _CODE_BASE + 4 * int(
                    rng.integers(0, code_slots - len(body) - 1)
                )
                trips = int(rng.geometric(1.0 / 128.0))
            back_pc = loop_start + 4 * len(body)
            for trip in range(trips):
                for k, slot in enumerate(body):
                    self._phases.advance()
                    yield self._instantiate(slot, loop_start + 4 * k)
                last = trip == trips - 1
                # Loop back-edge: tests an induction variable that is long
                # since computed, so it carries no in-flight dependence.
                yield Instruction(
                    OpClass.BRANCH,
                    pc=back_pc,
                    src1_dist=0,
                    addr=loop_start,
                    taken=not last,
                )
                if self._phases.current is not phase:
                    break  # the program moved to a new phase


def prewarm_caches(hierarchy, profile: WorkloadProfile | str) -> None:
    """Pre-populate the cache hierarchy with the profile's working sets.

    Touches the warm region, then the hot region, then the code footprint
    (in that order, so LRU leaves the hot set resident in the L1 and the
    warm set in the L2), standing in for the billions of warm-up
    instructions a real SimPoint run would have executed before the
    measured interval.
    """
    if isinstance(profile, str):
        profile = get_profile(profile)
    for addr in range(_WARM_BASE, _WARM_BASE + profile.warm_bytes, _LINE):
        hierarchy.access_data(addr)
    for addr in range(_HOT_BASE, _HOT_BASE + profile.hot_bytes, _LINE):
        hierarchy.access_data(addr)
    for pc in range(_CODE_BASE, _CODE_BASE + profile.code_bytes, _LINE):
        hierarchy.access_instruction(pc)
    # Forget the warm-up traffic so measured statistics start clean.
    for cache in (hierarchy.l1i, hierarchy.l1d, hierarchy.l2):
        cache.hits = 0
        cache.misses = 0
    hierarchy.memory_accesses = 0


def generate(
    profile: WorkloadProfile | str,
    seed: int | np.random.Generator | None = None,
) -> InstructionGenerator:
    """Build a generator from a profile or a benchmark name."""
    if isinstance(profile, str):
        profile = get_profile(profile)
    return InstructionGenerator(profile, seed)


def instruction_stream(
    profile: WorkloadProfile | str,
    count: int,
    seed: int | np.random.Generator | None = None,
) -> Iterator[Instruction]:
    """A bounded stream of ``count`` instructions."""
    if count < 0:
        raise ValueError("count must be non-negative")
    gen = iter(generate(profile, seed))
    for _ in range(count):
        yield next(gen)

"""Phase scheduling for workload generation.

Real programs move through phases (the paper leans on Sherwood et al.'s
SimPoint work [20]); the generator reproduces that by cycling through a
profile's :class:`~repro.workloads.spec.PhaseSpec` list with geometrically
distributed dwell times, so phase boundaries arrive at random but with the
profile's characteristic period — the mechanism that places current energy
into specific wavelet scales.
"""

from __future__ import annotations

import numpy as np

from .spec import PhaseSpec

__all__ = ["PhaseScheduler"]


class PhaseScheduler:
    """Round-robin phase walker with geometric dwell times."""

    def __init__(self, phases: tuple[PhaseSpec, ...], rng: np.random.Generator
                 ) -> None:
        if not phases:
            raise ValueError("need at least one phase")
        self._phases = phases
        self._rng = rng
        self._index = 0
        self._remaining = self._draw(phases[0])

    def _draw(self, phase: PhaseSpec) -> int:
        # Geometric with the requested mean, at least one instruction.
        p = min(1.0, 1.0 / phase.duration)
        return int(self._rng.geometric(p))

    @property
    def current(self) -> PhaseSpec:
        """The phase governing the next instruction."""
        return self._phases[self._index]

    def advance(self) -> PhaseSpec:
        """Consume one instruction; returns the phase it belongs to."""
        phase = self._phases[self._index]
        self._remaining -= 1
        if self._remaining <= 0:
            self._index = (self._index + 1) % len(self._phases)
            self._remaining = self._draw(self._phases[self._index])
        return phase

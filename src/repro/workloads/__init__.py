"""Workload substrate: synthetic SPEC2000 models and the dI/dt stressmark."""

from .generator import InstructionGenerator, generate, instruction_stream
from .microbench import stressmark_stream
from .phases import PhaseScheduler
from .spec import (
    SPEC2000,
    SPEC_FP,
    SPEC_INT,
    PhaseSpec,
    WorkloadProfile,
    get_profile,
)

__all__ = [
    "InstructionGenerator",
    "PhaseScheduler",
    "PhaseSpec",
    "SPEC2000",
    "SPEC_FP",
    "SPEC_INT",
    "WorkloadProfile",
    "generate",
    "get_profile",
    "instruction_stream",
    "stressmark_stream",
]

"""Synthetic models of the 26 SPEC CPU2000 benchmarks.

The paper runs SPEC2000 binaries through Wattch at SimPoint-chosen
simulation points; without the binaries we model each benchmark as a
*workload profile*: an instruction mix, dependency structure, branch
predictability, memory-region mix and a phase schedule, with parameters
set from each benchmark's published qualitative character.  What the
experiments need from a workload is the event structure of its current
draw — which the profile controls through three levers:

* ``cold`` memory traffic (streaming, always missing L2) produces the
  long-stall/burst pattern of the memory-bound benchmarks (swim, lucas,
  mcf, art — Figure 11's nominal-voltage spikes);
* phase alternation at tens-of-cycles periods pumps the 50–200 MHz
  resonance (mgrid, gcc, galgel, apsi — the dI/dt-problematic group of
  Figure 9);
* steady high-ILP compute with few misses yields the near-Gaussian
  current of gzip, mesa, crafty and eon (Figure 10).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "PhaseSpec",
    "WorkloadProfile",
    "SPEC2000",
    "SPEC_INT",
    "SPEC_FP",
    "get_profile",
]


@dataclass(frozen=True)
class PhaseSpec:
    """One recurring execution phase of a benchmark.

    Attributes
    ----------
    name:
        Label ("compute", "memory", ...).
    duration:
        Mean phase length in *instructions* (geometric distribution).
    fp_fraction:
        Share of ALU work going to FP units during the phase.
    load_fraction / store_fraction / branch_fraction:
        Instruction-mix shares; the remainder is ALU work.
    mult_fraction / div_fraction:
        Share of the ALU work that is multiply / divide.
    cold / warm:
        Probability that a memory access streams through (misses) L2, or
        hits L2 but misses L1; the rest hit in the L1-resident hot set.
    serial:
        Probability an instruction depends on its immediate predecessor
        (a dependent chain throttles ILP and drops current).
    hard_branch:
        Probability a conditional branch is data-dependent 50/50
        (unpredictable) rather than a biased loop branch.
    pattern_branch:
        Probability a conditional branch follows a short periodic
        taken/not-taken pattern (every-other-iteration work, unrolled
        tails) — trivial for a history-based predictor, hard for a
        bimodal one.
    """

    name: str
    duration: float
    fp_fraction: float = 0.0
    load_fraction: float = 0.25
    store_fraction: float = 0.10
    branch_fraction: float = 0.15
    mult_fraction: float = 0.05
    div_fraction: float = 0.003
    cold: float = 0.0
    warm: float = 0.05
    serial: float = 0.15
    hard_branch: float = 0.05
    pattern_branch: float = 0.0
    easy_bias: tuple[float, float] = (0.93, 0.995)

    def __post_init__(self) -> None:
        mix = self.load_fraction + self.store_fraction + self.branch_fraction
        if mix >= 1.0:
            raise ValueError("load+store+branch must leave room for ALU work")
        for name in (
            "fp_fraction",
            "mult_fraction",
            "div_fraction",
            "cold",
            "warm",
            "serial",
            "hard_branch",
            "pattern_branch",
        ):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be a probability")
        if self.cold + self.warm > 1.0:
            raise ValueError("cold + warm cannot exceed 1")
        lo, hi = self.easy_bias
        if not 0.5 <= lo <= hi <= 1.0:
            raise ValueError("easy_bias must satisfy 0.5 <= lo <= hi <= 1")
        if self.duration < 1:
            raise ValueError("duration must be at least one instruction")


@dataclass(frozen=True)
class WorkloadProfile:
    """A complete synthetic benchmark."""

    name: str
    suite: str  # "int" or "fp"
    phases: tuple[PhaseSpec, ...]
    hot_bytes: int = 16 * 1024  # L1-resident working set
    warm_bytes: int = 1024 * 1024  # L2-resident working set
    code_bytes: int = 32 * 1024  # hot code footprint (I-cache behaviour)
    cold_code: float = 0.0  # probability a fetch group jumps to cold code
    seed: int = 0

    def __post_init__(self) -> None:
        if self.suite not in ("int", "fp"):
            raise ValueError("suite must be 'int' or 'fp'")
        if not self.phases:
            raise ValueError("a profile needs at least one phase")
        if min(self.hot_bytes, self.warm_bytes, self.code_bytes) <= 0:
            raise ValueError("working-set sizes must be positive")


def _compute(duration: float = 4000.0, fp: float = 0.0, **kw) -> PhaseSpec:
    return PhaseSpec("compute", duration, fp_fraction=fp, **kw)


def _memory(duration: float, cold: float, fp: float = 0.0, **kw) -> PhaseSpec:
    kw.setdefault("load_fraction", 0.35)
    kw.setdefault("serial", 0.35)
    return PhaseSpec("memory", duration, fp_fraction=fp, cold=cold, **kw)


def _pulse(duration: float, fp: float = 0.0, **kw) -> PhaseSpec:
    """A short stretch dominated by data-dependent branches.

    Out-of-order execution runs ahead of serial arithmetic chains, so the
    only per-loop event that reliably collapses the current to its floor
    is a branch misprediction: fetch stops, the window drains, and the
    12-cycle redirect empties the machine.  A pulse is therefore a couple
    of 50/50 branches plus the serial work they depend on."""
    kw.setdefault("serial", 0.9)
    kw.setdefault("load_fraction", 0.10)
    kw.setdefault("store_fraction", 0.02)
    kw.setdefault("branch_fraction", 0.55)
    kw.setdefault("mult_fraction", 0.3)
    kw.setdefault("hard_branch", 0.95)
    return PhaseSpec("pulse", duration, fp_fraction=fp, **kw)


def _steady(name: str, suite: str, fp: float, miss: float = 0.001, **kw
            ) -> WorkloadProfile:
    """Low-L2-miss, smoothly executing benchmark (Figure 10's group)."""
    return WorkloadProfile(
        name,
        suite,
        phases=(
            _compute(6000.0, fp, warm=0.01, cold=miss,
                     hard_branch=0.001, easy_bias=(0.995, 0.9998)),
            _compute(3000.0, fp, warm=0.02, cold=miss, serial=0.25,
                     hard_branch=0.001, easy_bias=(0.995, 0.9998)),
        ),
        **kw,
    )


def _membound(name: str, suite: str, fp: float, cold: float,
              serial_mem: float = 0.35, **kw) -> WorkloadProfile:
    """L2-miss-dominated benchmark (Figure 11's group)."""
    return WorkloadProfile(
        name,
        suite,
        phases=(
            _memory(900.0, cold=cold, fp=fp, serial=serial_mem),
            _compute(500.0, fp, warm=0.10, cold=cold / 4),
        ),
        warm_bytes=4 * 1024 * 1024,  # exceeds the 2 MB L2 -> streaming
        **kw,
    )


def _resonant(name: str, suite: str, fp: float, burst: float = 40.0,
              quiet: float = 4.0, **kw) -> WorkloadProfile:
    """Loop-structured benchmark whose burst/stall alternation lands in
    the tens-of-cycles resonance band (the dI/dt stressors of Figure 9).

    ``burst`` independent instructions execute in ~burst/3 cycles; the
    ``quiet`` serial long-latency chain stalls ~4x its length — sized so
    one loop iteration spans roughly the supply's 30-cycle resonant
    period at 3 GHz.
    """
    return WorkloadProfile(
        name,
        suite,
        phases=(
            _compute(burst, fp, serial=0.02, warm=0.02,
                     hard_branch=0.02, easy_bias=(0.97, 0.999)),
            _pulse(quiet, fp),
        ),
        **kw,
    )


SPEC2000: dict[str, WorkloadProfile] = {
    # ---- SPECint2000 ------------------------------------------------------
    "gzip": _steady("gzip", "int", fp=0.0, seed=101),
    "vpr": WorkloadProfile(
        "vpr",
        "int",
        phases=(
            _compute(5000.0, warm=0.04, cold=0.012, serial=0.55,
                     hard_branch=0.005, easy_bias=(0.99, 0.999)),
            _compute(2500.0, warm=0.05, cold=0.012, serial=0.5,
                     hard_branch=0.005, easy_bias=(0.99, 0.999)),
        ),
        seed=102,
    ),
    "gcc": _resonant(
        "gcc", "int", fp=0.0, burst=44.0, quiet=4.0,
        code_bytes=512 * 1024, cold_code=0.02, seed=103,
    ),
    "mcf": _membound("mcf", "int", fp=0.0, cold=0.15, serial_mem=0.6, seed=104),
    "crafty": _steady("crafty", "int", fp=0.0, seed=105),
    "parser": WorkloadProfile(
        "parser",
        "int",
        phases=(
            _compute(3000.0, warm=0.10, serial=0.35, pattern_branch=0.04),
            _memory(1200.0, cold=0.015),
        ),
        seed=106,
    ),
    "eon": _steady("eon", "int", fp=0.15, seed=107),
    "perlbmk": WorkloadProfile(
        "perlbmk",
        "int",
        phases=(
            _compute(4500.0, warm=0.05, hard_branch=0.03,
                     pattern_branch=0.015, easy_bias=(0.98, 0.999)),
            _compute(2000.0, warm=0.08, serial=0.3),
        ),
        code_bytes=256 * 1024,
        cold_code=0.003,
        seed=108,
    ),
    "gap": WorkloadProfile(
        "gap",
        "int",
        phases=(
            _compute(8000.0, warm=0.03, cold=0.03, serial=0.55,
                     hard_branch=0.003, easy_bias=(0.992, 0.9995)),
        ),
        seed=109,
    ),
    "vortex": WorkloadProfile(
        "vortex",
        "int",
        phases=(
            _compute(4000.0, warm=0.05, hard_branch=0.01,
                     pattern_branch=0.06, easy_bias=(0.985, 0.999)),
            _memory(1500.0, cold=0.01),
        ),
        code_bytes=256 * 1024,
        cold_code=0.003,
        seed=110,
    ),
    "bzip2": _steady("bzip2", "int", fp=0.0, miss=0.004, seed=111),
    "twolf": WorkloadProfile(
        "twolf",
        "int",
        phases=(
            _compute(3500.0, warm=0.10, serial=0.35, hard_branch=0.05,
                     pattern_branch=0.06, easy_bias=(0.97, 0.998)),
            _memory(1500.0, cold=0.008),
        ),
        seed=112,
    ),
    # ---- SPECfp2000 -------------------------------------------------------
    "wupwise": WorkloadProfile(
        "wupwise",
        "fp",
        phases=(
            _compute(5000.0, fp=0.55, warm=0.06, mult_fraction=0.25),
            _memory(1500.0, cold=0.02, fp=0.4),
        ),
        seed=201,
    ),
    "swim": _membound("swim", "fp", fp=0.5, cold=0.12, seed=202),
    "mgrid": _resonant("mgrid", "fp", fp=0.55, burst=42.0, quiet=4.0, seed=203),
    "applu": WorkloadProfile(
        "applu",
        "fp",
        phases=(
            _compute(2500.0, fp=0.5, warm=0.10, mult_fraction=0.3),
            _memory(1000.0, cold=0.05, fp=0.4),
        ),
        seed=204,
    ),
    "mesa": _steady("mesa", "fp", fp=0.35, seed=205),
    "galgel": _resonant("galgel", "fp", fp=0.35, burst=38.0, quiet=4.0, seed=206),
    "art": _membound("art", "fp", fp=0.45, cold=0.18, seed=207),
    "equake": WorkloadProfile(
        "equake",
        "fp",
        phases=(
            _memory(2500.0, cold=0.06, fp=0.4, serial=0.5),
            _compute(1200.0, fp=0.45, warm=0.08),
        ),
        warm_bytes=3 * 1024 * 1024,
        seed=208,
    ),
    "facerec": WorkloadProfile(
        "facerec",
        "fp",
        phases=(
            _compute(4000.0, fp=0.5, warm=0.07, mult_fraction=0.3),
            _memory(1200.0, cold=0.02, fp=0.4),
        ),
        seed=209,
    ),
    "ammp": WorkloadProfile(
        "ammp",
        "fp",
        phases=(
            _compute(3000.0, fp=0.5, warm=0.12, serial=0.4),
            _memory(1500.0, cold=0.03, fp=0.4),
        ),
        seed=210,
    ),
    "lucas": _membound("lucas", "fp", fp=0.55, cold=0.10, seed=211),
    "fma3d": WorkloadProfile(
        "fma3d",
        "fp",
        phases=(
            _compute(3500.0, fp=0.5, warm=0.08, mult_fraction=0.25),
            _memory(1400.0, cold=0.025, fp=0.4),
        ),
        code_bytes=256 * 1024,
        cold_code=0.01,
        seed=212,
    ),
    "sixtrack": _steady("sixtrack", "fp", fp=0.55, seed=213),
    "apsi": _resonant("apsi", "fp", fp=0.35, burst=42.0, quiet=4.0, seed=214),
}

SPEC_INT: tuple[str, ...] = tuple(
    n for n, p in SPEC2000.items() if p.suite == "int"
)
SPEC_FP: tuple[str, ...] = tuple(n for n, p in SPEC2000.items() if p.suite == "fp")


def get_profile(name: str) -> WorkloadProfile:
    """Profile lookup with a helpful error."""
    try:
        return SPEC2000[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {sorted(SPEC2000)}"
        )

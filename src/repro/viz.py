"""Terminal visualization helpers.

Every figure in the paper is a plot; this repo renders their data as
aligned ASCII so benches, examples and the CLI can show *shapes* (curves,
bars, histograms, waveforms) without a plotting dependency.  All
functions return strings; nothing prints.
"""

from __future__ import annotations

import numpy as np

__all__ = ["bar_chart", "line_plot", "histogram", "waveform", "table"]

_FULL = "#"
_EMPTY = " "


def bar_chart(
    values: dict[str, float],
    width: int = 50,
    fmt: str = "{:8.2f}",
    title: str = "",
) -> str:
    """Horizontal bar chart, one row per labelled value."""
    if not values:
        raise ValueError("nothing to plot")
    peak = max(abs(v) for v in values.values()) or 1.0
    label_w = max(len(str(k)) for k in values)
    lines = [f"--- {title} ---"] if title else []
    for key, value in values.items():
        bar = _FULL * int(round(width * abs(value) / peak))
        lines.append(f"{str(key):{label_w}s} {fmt.format(value)} |{bar}")
    return "\n".join(lines)


def line_plot(
    y: np.ndarray,
    height: int = 12,
    width: int = 64,
    title: str = "",
) -> str:
    """Down-sampled character line plot of one series."""
    y = np.asarray(y, dtype=float)
    if y.size == 0:
        raise ValueError("nothing to plot")
    if height < 2 or width < 2:
        raise ValueError("plot area too small")
    # Resample to the plot width by block-averaging.
    edges = np.linspace(0, y.size, width + 1).astype(int)
    cols = np.array(
        [y[a:b].mean() if b > a else y[min(a, y.size - 1)]
         for a, b in zip(edges[:-1], edges[1:])]
    )
    lo, hi = float(cols.min()), float(cols.max())
    span = hi - lo or 1.0
    rows = np.clip(((cols - lo) / span * (height - 1)).round().astype(int),
                   0, height - 1)
    grid = [[_EMPTY] * width for _ in range(height)]
    for x, r in enumerate(rows):
        grid[height - 1 - r][x] = "*"
    lines = [f"--- {title} ---"] if title else []
    lines.append(f"{hi:10.3f} +" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{lo:10.3f} +" + "".join(grid[-1]))
    return "\n".join(lines)


def histogram(
    values: np.ndarray,
    bins: int = 24,
    width: int = 50,
    title: str = "",
    fmt: str = "{:9.3f}",
) -> str:
    """Vertical-label histogram (one row per bin)."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("nothing to plot")
    counts, edges = np.histogram(values, bins=bins)
    peak = counts.max() or 1
    lines = [f"--- {title} ---"] if title else []
    for count, lo in zip(counts, edges[:-1]):
        bar = _FULL * int(round(width * count / peak))
        lines.append(f"{fmt.format(lo)} |{bar}")
    return "\n".join(lines)


def waveform(
    y: np.ndarray,
    thresholds: tuple[float, float] | None = None,
    width: int = 80,
    title: str = "",
) -> str:
    """One-line ternary rendering of a trace.

    ``#`` above the upper threshold, ``.`` below the lower, ``+`` between;
    defaults split the range into thirds.  Handy for eyeballing burst/
    stall structure in logs.
    """
    y = np.asarray(y, dtype=float)
    if y.size == 0:
        raise ValueError("nothing to plot")
    if thresholds is None:
        lo, hi = float(y.min()), float(y.max())
        thresholds = (lo + (hi - lo) / 3, lo + 2 * (hi - lo) / 3)
    low, high = thresholds
    if low > high:
        raise ValueError("thresholds must be ordered")
    edges = np.linspace(0, y.size, width + 1).astype(int)
    marks = []
    for a, b in zip(edges[:-1], edges[1:]):
        v = y[a:b].mean() if b > a else y[min(a, y.size - 1)]
        marks.append("#" if v > high else ("." if v < low else "+"))
    head = f"--- {title} ---\n" if title else ""
    return head + "".join(marks)


def table(
    rows: dict[str, list],
    headers: list[str],
    fmt: str = "{:>10}",
    title: str = "",
) -> str:
    """Aligned text table with a label column."""
    if not rows:
        raise ValueError("nothing to tabulate")
    label_w = max(len(str(k)) for k in rows)
    lines = [f"--- {title} ---"] if title else []
    lines.append(" " * label_w + " " + "".join(fmt.format(h) for h in headers))
    for key, cells in rows.items():
        if len(cells) != len(headers):
            raise ValueError(f"row {key!r} has {len(cells)} cells, "
                             f"expected {len(headers)}")
        body = "".join(
            fmt.format(f"{c:.3f}" if isinstance(c, float) else c)
            for c in cells
        )
        lines.append(f"{str(key):{label_w}s} {body}")
    return "\n".join(lines)

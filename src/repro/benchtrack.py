"""Perf-regression tracking for the repo's committed benchmark numbers.

The hard-won speedups in ``BENCH_kernels.json`` (1279× convolver, 42×
end-to-end characterize) and ``BENCH_store.json`` (5.9 GB/s mmap scans,
274× characterize-from-store) are claims the codebase makes about
itself; without a gate they rot silently.  This module diffs a freshly
measured bench document against a committed baseline with *noise-aware*
thresholds and keeps an append-only ``BENCH_history.jsonl`` trajectory:

* every numeric leaf both documents share is compared;
* metric direction is inferred from its name — ``speedup``, ``gb_per_s``
  and ``*_per_s`` are higher-is-better, ``*_s``/``seconds`` timings are
  lower-is-better; everything else (repeats, sizes, max_abs_diff) is
  informational and never gates;
* a metric regresses when it moves against its direction by more than
  ``threshold`` (default 25% — timing under CI is noisy and the guarded
  speedups are order-of-magnitude, not percent-level);
* *noise floor*: absolute timings below ``noise_floor_s`` (default 5 ms)
  get a widened threshold, because a 1 ms kernel jittering to 1.4 ms is
  scheduler noise, not a regression;
* quick-mode documents (``"quick": true``) never gate against full-mode
  baselines unless explicitly allowed — the sizes differ, so the numbers
  are incomparable.

``repro bench --compare BASELINE`` and ``tools/bench_compare.py`` both
drive :func:`compare_files`; CI fails when any gating metric regresses
(exit 1 from the tool).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "BenchComparison",
    "MetricDelta",
    "append_history",
    "compare_benchmarks",
    "compare_files",
    "flatten_metrics",
    "metric_direction",
    "render_comparison",
]

#: Relative move against a metric's direction that counts as a regression.
DEFAULT_THRESHOLD = 0.25

#: Timings at or below this are dominated by scheduler jitter; their
#: threshold is widened by NOISE_MULTIPLIER.
DEFAULT_NOISE_FLOOR_S = 0.005
NOISE_MULTIPLIER = 4.0

#: Name suffixes/exact names that carry a gating direction.  Anything
#: not matched is informational only.
_HIGHER_SUFFIXES = ("_per_s", "speedup", "gb_per_s")
_LOWER_SUFFIXES = ("_s", "seconds")
_NEVER_GATE = ("max_abs_diff", "repeats", "benchmarks", "cycles", "traces", "bytes")


def metric_direction(name: str) -> str:
    """``"higher"`` / ``"lower"`` / ``"info"`` for one metric leaf name.

    ``name`` is the dotted flattened path; only the leaf decides.
    """
    leaf = name.rsplit(".", 1)[-1]
    if leaf in _NEVER_GATE:
        return "info"
    for suffix in _HIGHER_SUFFIXES:
        if leaf == suffix or leaf.endswith(suffix):
            return "higher"
    for suffix in _LOWER_SUFFIXES:
        if leaf == suffix or leaf.endswith(suffix):
            return "lower"
    return "info"


def flatten_metrics(doc: dict, prefix: str = "") -> dict[str, float]:
    """Every numeric leaf of a bench document as ``{"a.b.c": value}``.

    Booleans (e.g. the ``quick`` flag) and non-numeric leaves are
    skipped; nesting flattens with dots.
    """
    out: dict[str, float] = {}
    for key, value in doc.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            out[path] = float(value)
        elif isinstance(value, dict):
            out.update(flatten_metrics(value, path))
    return out


@dataclass
class MetricDelta:
    """One metric's baseline→current move and its verdict."""

    name: str
    direction: str  # "higher" | "lower" | "info"
    baseline: float
    current: float
    change: float  # signed relative move, positive = value went up
    threshold: float  # the effective (possibly noise-widened) threshold
    regressed: bool
    improved: bool
    noisy: bool  # True when the noise-floor widening applied


@dataclass
class BenchComparison:
    """The full verdict of one baseline↔current diff."""

    baseline_path: str
    current_path: str
    deltas: list[MetricDelta] = field(default_factory=list)
    missing: list[str] = field(default_factory=list)  # in baseline only
    added: list[str] = field(default_factory=list)  # in current only
    skipped_quick_mismatch: bool = False

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def improvements(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.improved]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.skipped_quick_mismatch

    def to_dict(self) -> dict:
        return {
            "baseline": self.baseline_path,
            "current": self.current_path,
            "ok": self.ok,
            "regressions": [d.name for d in self.regressions],
            "improvements": [d.name for d in self.improvements],
            "missing": self.missing,
            "added": self.added,
            "quick_mismatch": self.skipped_quick_mismatch,
            "metrics": {
                d.name: {
                    "baseline": d.baseline,
                    "current": d.current,
                    "change": d.change,
                }
                for d in self.deltas
            },
        }


def compare_benchmarks(
    baseline: dict,
    current: dict,
    threshold: float = DEFAULT_THRESHOLD,
    noise_floor_s: float = DEFAULT_NOISE_FLOOR_S,
    allow_quick_mismatch: bool = False,
    baseline_path: str = "<baseline>",
    current_path: str = "<current>",
) -> BenchComparison:
    """Diff two bench documents; see the module docstring for semantics."""
    result = BenchComparison(
        baseline_path=baseline_path, current_path=current_path
    )
    if bool(baseline.get("quick")) != bool(current.get("quick")):
        result.skipped_quick_mismatch = not allow_quick_mismatch
        if result.skipped_quick_mismatch:
            return result
    base_metrics = flatten_metrics(baseline)
    cur_metrics = flatten_metrics(current)
    result.missing = sorted(set(base_metrics) - set(cur_metrics))
    result.added = sorted(set(cur_metrics) - set(base_metrics))
    for name in sorted(set(base_metrics) & set(cur_metrics)):
        direction = metric_direction(name)
        base, cur = base_metrics[name], cur_metrics[name]
        change = (cur - base) / base if base else 0.0
        effective = threshold
        noisy = False
        # timings beneath the noise floor jitter by multiples of
        # themselves; widen rather than gate on scheduler luck
        if direction == "lower" and base <= noise_floor_s:
            effective = threshold * NOISE_MULTIPLIER
            noisy = True
        regressed = improved = False
        if direction == "higher":
            regressed = change < -effective
            improved = change > effective
        elif direction == "lower":
            regressed = change > effective
            improved = change < -effective
        result.deltas.append(
            MetricDelta(
                name=name,
                direction=direction,
                baseline=base,
                current=cur,
                change=change,
                threshold=effective,
                regressed=regressed,
                improved=improved,
                noisy=noisy,
            )
        )
    return result


def compare_files(
    baseline_path: str | Path,
    current_path: str | Path,
    threshold: float = DEFAULT_THRESHOLD,
    noise_floor_s: float = DEFAULT_NOISE_FLOOR_S,
    allow_quick_mismatch: bool = False,
) -> BenchComparison:
    """:func:`compare_benchmarks` over two JSON files."""
    with open(baseline_path, encoding="utf-8") as fh:
        baseline = json.load(fh)
    with open(current_path, encoding="utf-8") as fh:
        current = json.load(fh)
    return compare_benchmarks(
        baseline,
        current,
        threshold=threshold,
        noise_floor_s=noise_floor_s,
        allow_quick_mismatch=allow_quick_mismatch,
        baseline_path=str(baseline_path),
        current_path=str(current_path),
    )


def render_comparison(result: BenchComparison) -> str:
    """Human-readable verdict for the CLI / CI log."""
    lines = [f"bench compare: {result.current_path} vs {result.baseline_path}"]
    if result.skipped_quick_mismatch:
        lines.append(
            "  REFUSED: quick-mode and full-mode numbers are incomparable "
            "(pass --allow-quick-mismatch to force)"
        )
        return "\n".join(lines)
    gated = [d for d in result.deltas if d.direction != "info"]
    for d in gated:
        arrow = "▲" if d.change > 0 else ("▼" if d.change < 0 else "·")
        verdict = (
            "REGRESSED"
            if d.regressed
            else ("improved" if d.improved else "ok")
        )
        noise = " (noise-widened)" if d.noisy else ""
        lines.append(
            f"  {verdict:<9} {d.name:<42} {d.baseline:.6g} → {d.current:.6g}"
            f"  {arrow}{abs(d.change) * 100:.1f}%"
            f" [±{d.threshold * 100:.0f}%{noise}]"
        )
    if result.missing:
        lines.append(f"  missing from current: {', '.join(result.missing)}")
    if result.added:
        lines.append(f"  new metrics: {', '.join(result.added)}")
    count = len(result.regressions)
    lines.append(
        f"  verdict: {'OK' if result.ok else 'FAIL'} "
        f"({count} regression(s), {len(result.improvements)} improvement(s), "
        f"{len(gated)} gated metric(s))"
    )
    return "\n".join(lines)


def append_history(
    history_path: str | Path,
    result: BenchComparison,
    extra: dict | None = None,
) -> None:
    """Append one comparison verdict to the ``BENCH_history.jsonl``
    trajectory (created on first use)."""
    entry = {"t": time.time(), **result.to_dict()}
    if extra:
        entry.update(extra)
    path = Path(history_path)
    if path.parent != Path("."):
        path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")

"""Chi-squared goodness-of-fit test for Gaussianity (§4.1, Figures 6 & 12).

The paper classifies execution windows as Gaussian using "the Chi-Squared
Goodness of Fit test with 95 % significance ... for a normal distribution
with the same mean and variance as the sample window data" (Kreyszig).
Implemented here from scratch: equal-probability binning under the fitted
normal, Pearson statistic, and comparison against the chi-squared critical
value with ``bins - 1 - 2`` degrees of freedom (two fitted parameters).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sstats

from .gaussian import GaussianModel, normal_quantile

__all__ = ["ChiSquareResult", "chi_square_gaussian_test", "is_gaussian_window"]


@dataclass(frozen=True)
class ChiSquareResult:
    """Outcome of one goodness-of-fit test."""

    statistic: float
    critical: float
    dof: int
    bins: int
    accepted: bool  # True = Gaussianity not rejected at the significance level
    degenerate: bool  # True = window too flat to test (classified non-Gaussian)


def _bin_count(n: int) -> int:
    """Bin count rule: ~n/8 equal-probability bins, clamped to [4, 16].

    Keeps expected counts >= ~4 per bin for the window sizes the paper
    uses (32/64/128/256 cycles), as the classic validity rule requires.
    """
    return int(np.clip(n // 8, 4, 16))


def chi_square_gaussian_test(
    samples: np.ndarray,
    significance: float = 0.95,
    bins: int | None = None,
) -> ChiSquareResult:
    """Test a window of per-cycle samples against a fitted normal.

    Parameters
    ----------
    samples:
        The window data (e.g. 64 per-cycle current values).
    significance:
        Confidence level; 0.95 reproduces the paper's setting.
    bins:
        Number of equal-probability bins; default per :func:`_bin_count`.

    Notes
    -----
    Windows whose variance is (numerically) zero cannot be binned; they are
    reported ``degenerate`` and *not accepted* — consistent with the
    paper's finding that the non-Gaussian remainder consists of very
    low-variance windows.
    """
    x = np.asarray(samples, dtype=float)
    if x.size < 16:
        raise ValueError("window too small for a meaningful chi-square test")
    if not 0.0 < significance < 1.0:
        raise ValueError("significance must be in (0, 1)")
    k = _bin_count(x.size) if bins is None else bins
    if k < 3:
        raise ValueError("need at least 3 bins")

    spread = float(x.std())
    scale = max(1.0, float(np.abs(x).max()))
    if spread < 1e-12 * scale:
        return ChiSquareResult(
            statistic=float("inf"),
            critical=0.0,
            dof=max(1, k - 3),
            bins=k,
            accepted=False,
            degenerate=True,
        )

    model = GaussianModel.fit(x)
    # Equal-probability bin edges under the fitted normal.
    qs = np.arange(1, k) / k
    edges = model.mean + model.std * np.asarray(normal_quantile(qs))
    observed = np.histogram(x, bins=np.concatenate([[-np.inf], edges, [np.inf]]))[0]
    expected = x.size / k
    statistic = float(np.sum((observed - expected) ** 2) / expected)

    dof = max(1, k - 1 - 2)  # two parameters estimated from the sample
    critical = float(sstats.chi2.ppf(significance, df=dof))
    return ChiSquareResult(
        statistic=statistic,
        critical=critical,
        dof=dof,
        bins=k,
        accepted=statistic <= critical,
        degenerate=False,
    )


def is_gaussian_window(samples: np.ndarray, significance: float = 0.95) -> bool:
    """Convenience predicate used by the characterization pipeline."""
    return chi_square_gaussian_test(samples, significance).accepted

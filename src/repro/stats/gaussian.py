"""Gaussian model for voltage-level probabilities (§4.1 step 5).

The offline characterization ends by modeling per-cycle voltage as a
Gaussian with estimated mean (the IR drop below Vdd) and estimated variance
(summed per-scale contributions); the probability that the voltage strays
below a control point is then a single normal CDF evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import erf, erfinv

__all__ = ["normal_cdf", "normal_quantile", "GaussianModel"]


def normal_cdf(x: np.ndarray | float) -> np.ndarray | float:
    """Standard normal CDF ``Phi(x)``."""
    return 0.5 * (1.0 + erf(np.asarray(x, dtype=float) / np.sqrt(2.0)))


def normal_quantile(p: np.ndarray | float) -> np.ndarray | float:
    """Inverse standard normal CDF."""
    p = np.asarray(p, dtype=float)
    if np.any((p <= 0.0) | (p >= 1.0)):
        raise ValueError("quantile probability must be in (0, 1)")
    return np.sqrt(2.0) * erfinv(2.0 * p - 1.0)


@dataclass(frozen=True)
class GaussianModel:
    """A fitted or estimated Gaussian distribution.

    Used both for the voltage model of §4.1 (mean = Vdd − IR drop,
    variance = summed wavelet-scale contributions) and for the null
    hypothesis of the χ² Gaussianity test.
    """

    mean: float
    variance: float

    def __post_init__(self) -> None:
        if self.variance < 0.0:
            raise ValueError("variance must be non-negative")

    @classmethod
    def fit(cls, samples: np.ndarray) -> "GaussianModel":
        """Moment-match a sample (population variance, as the χ² test uses)."""
        x = np.asarray(samples, dtype=float)
        if x.size < 2:
            raise ValueError("need at least two samples to fit")
        return cls(mean=float(x.mean()), variance=float(x.var()))

    @property
    def std(self) -> float:
        """Standard deviation."""
        return float(np.sqrt(self.variance))

    def prob_below(self, threshold: float) -> float:
        """P(X < threshold) — e.g. fraction of cycles below the 0.97 V control point."""
        if self.variance == 0.0:
            return 1.0 if threshold > self.mean else 0.0
        return float(normal_cdf((threshold - self.mean) / self.std))

    def prob_above(self, threshold: float) -> float:
        """P(X > threshold) — for the high-voltage control point."""
        return 1.0 - self.prob_below(threshold)

    def prob_outside(self, low: float, high: float) -> float:
        """P(X < low or X > high) — total emergency probability."""
        if high < low:
            raise ValueError("high must be >= low")
        return self.prob_below(low) + self.prob_above(high)

    def quantile(self, p: float) -> float:
        """Value below which a fraction ``p`` of the mass lies."""
        return self.mean + self.std * float(normal_quantile(p))

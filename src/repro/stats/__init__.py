"""Statistics substrate: Gaussian models, χ² Gaussianity testing, windowed
descriptive statistics and voltage histograms (§4.1's statistical toolkit).
"""

from .chisquare import ChiSquareResult, chi_square_gaussian_test, is_gaussian_window
from .descriptive import (
    WindowStudy,
    extract_windows,
    random_window_starts,
    study_windows,
    window_variances,
)
from .gaussian import GaussianModel, normal_cdf, normal_quantile
from .jarque_bera import JarqueBeraResult, jarque_bera_test
from .histogram import VoltageHistogram, voltage_histogram

__all__ = [
    "ChiSquareResult",
    "GaussianModel",
    "JarqueBeraResult",
    "jarque_bera_test",
    "VoltageHistogram",
    "WindowStudy",
    "chi_square_gaussian_test",
    "extract_windows",
    "is_gaussian_window",
    "normal_cdf",
    "normal_quantile",
    "random_window_starts",
    "study_windows",
    "voltage_histogram",
    "window_variances",
]

"""Jarque–Bera normality test (robustness companion to the χ² test).

The paper classifies windows with a chi-squared goodness-of-fit test; a
reasonable referee question is whether the Gaussian-window findings
depend on that choice.  The Jarque–Bera statistic tests the same null
through a different lens — sample skewness and excess kurtosis:

    JB = n/6 * (S^2 + K^2/4)  ~  chi2(2) under normality.

The Figure-6 bench reports both tests' acceptance rates side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sstats

__all__ = ["JarqueBeraResult", "jarque_bera_test"]


@dataclass(frozen=True)
class JarqueBeraResult:
    """Outcome of one Jarque–Bera normality test."""

    statistic: float
    critical: float
    skewness: float
    excess_kurtosis: float
    accepted: bool
    degenerate: bool


def jarque_bera_test(
    samples: np.ndarray, significance: float = 0.95
) -> JarqueBeraResult:
    """Test a sample against normality via skewness/kurtosis.

    Flat (zero-variance) windows are reported ``degenerate`` and not
    accepted, mirroring the χ² implementation so the two are directly
    comparable on the same window population.
    """
    x = np.asarray(samples, dtype=float)
    if x.size < 8:
        raise ValueError("need at least 8 samples")
    if not 0.0 < significance < 1.0:
        raise ValueError("significance must be in (0, 1)")
    n = x.size
    centred = x - x.mean()
    m2 = float(np.mean(centred**2))
    scale = max(1.0, float(np.abs(x).max()))
    if m2 < (1e-12 * scale) ** 2:
        return JarqueBeraResult(
            statistic=float("inf"),
            critical=0.0,
            skewness=0.0,
            excess_kurtosis=0.0,
            accepted=False,
            degenerate=True,
        )
    m3 = float(np.mean(centred**3))
    m4 = float(np.mean(centred**4))
    skew = m3 / m2**1.5
    kurt = m4 / m2**2 - 3.0
    statistic = n / 6.0 * (skew**2 + kurt**2 / 4.0)
    critical = float(sstats.chi2.ppf(significance, df=2))
    return JarqueBeraResult(
        statistic=statistic,
        critical=critical,
        skewness=skew,
        excess_kurtosis=kurt,
        accepted=statistic <= critical,
        degenerate=False,
    )

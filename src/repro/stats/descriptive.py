"""Windowed descriptive statistics over per-cycle traces.

The characterization experiments of §4.1 sample fixed-size windows "at
random intervals throughout the execution" and study their variance and
distribution.  This module owns window selection and the aggregate
statistics reported in Figures 6 and 7.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "random_window_starts",
    "extract_windows",
    "window_variances",
    "WindowStudy",
    "study_windows",
]


def random_window_starts(
    trace_length: int, window: int, count: int, rng: np.random.Generator
) -> np.ndarray:
    """``count`` random window start offsets, uniform over the trace."""
    if window < 1 or window > trace_length:
        raise ValueError("window must fit inside the trace")
    if count < 1:
        raise ValueError("count must be positive")
    return rng.integers(0, trace_length - window + 1, size=count)


def extract_windows(
    trace: np.ndarray, starts: np.ndarray, window: int
) -> np.ndarray:
    """Stack the chosen windows into a ``(count, window)`` matrix."""
    t = np.asarray(trace, dtype=float)
    starts = np.asarray(starts, dtype=int)
    if np.any(starts < 0) or np.any(starts + window > len(t)):
        raise ValueError("window out of trace bounds")
    idx = starts[:, None] + np.arange(window)[None, :]
    return t[idx]


def window_variances(windows: np.ndarray) -> np.ndarray:
    """Per-window population variance."""
    w = np.asarray(windows, dtype=float)
    if w.ndim != 2:
        raise ValueError("expected a (count, window) matrix")
    return w.var(axis=1)


@dataclass(frozen=True)
class WindowStudy:
    """Aggregate statistics of one benchmark's sampled windows.

    Attributes mirror what Figures 6 and 7 plot: the Gaussian acceptance
    rate and the variance split between accepted and rejected windows.
    """

    window: int
    total: int
    gaussian: int
    overall_variance: float
    gaussian_variance: float
    non_gaussian_variance: float

    @property
    def acceptance_rate(self) -> float:
        """Fraction of windows accepted as Gaussian (Figure 6's y-axis)."""
        return self.gaussian / self.total if self.total else 0.0


def study_windows(
    trace: np.ndarray,
    window: int,
    count: int,
    rng: np.random.Generator,
    significance: float = 0.95,
) -> WindowStudy:
    """Sample random windows and classify each with the χ² Gaussian test."""
    from .chisquare import is_gaussian_window  # late import: sibling module

    starts = random_window_starts(len(trace), window, count, rng)
    windows = extract_windows(trace, starts, window)
    variances = window_variances(windows)
    flags = np.fromiter(
        (is_gaussian_window(w, significance) for w in windows),
        dtype=bool,
        count=len(windows),
    )
    gaussian_var = float(variances[flags].mean()) if flags.any() else 0.0
    non_gaussian_var = float(variances[~flags].mean()) if (~flags).any() else 0.0
    return WindowStudy(
        window=window,
        total=len(windows),
        gaussian=int(flags.sum()),
        overall_variance=float(variances.mean()),
        gaussian_variance=gaussian_var,
        non_gaussian_variance=non_gaussian_var,
    )

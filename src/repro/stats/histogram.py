"""Voltage histograms (Figures 10 and 11).

The paper visualizes per-cycle voltage distributions as percent-of-cycles
histograms over 0.90–1.05 V; low-L2-miss benchmarks look Gaussian while
memory-bound ones spike at the nominal 1.0 V.  This module computes those
histograms and simple shape diagnostics (peakedness at nominal) used by
the analysis code and benches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["VoltageHistogram", "voltage_histogram"]


@dataclass(frozen=True)
class VoltageHistogram:
    """Percent-of-cycles histogram of a voltage trace."""

    edges: np.ndarray  # bin edges, length bins+1
    percent: np.ndarray  # percent of cycles per bin, length bins

    @property
    def centers(self) -> np.ndarray:
        """Bin midpoints."""
        return 0.5 * (self.edges[:-1] + self.edges[1:])

    def peak_bin(self) -> tuple[float, float]:
        """(center, percent) of the tallest bin."""
        k = int(np.argmax(self.percent))
        return float(self.centers[k]), float(self.percent[k])

    def mass_near(self, value: float, halfwidth: float) -> float:
        """Percent of cycles within ``value ± halfwidth``.

        Used to quantify the nominal-voltage spike of the high-L2-miss
        benchmarks in Figure 11.
        """
        mask = np.abs(self.centers - value) <= halfwidth
        return float(self.percent[mask].sum())

    def spike_ratio(self, value: float, halfwidth: float) -> float:
        """Peakedness: mass near ``value`` relative to a uniform spread.

        A Gaussian-looking histogram scores near 1–3; a trace pinned at
        nominal voltage scores much higher.
        """
        mask = np.abs(self.centers - value) <= halfwidth
        n_in = int(mask.sum())
        if n_in == 0:
            return 0.0
        uniform = 100.0 * n_in / len(self.percent)
        return self.mass_near(value, halfwidth) / uniform


def voltage_histogram(
    voltage: np.ndarray,
    v_lo: float = 0.90,
    v_hi: float = 1.05,
    bins: int = 60,
) -> VoltageHistogram:
    """Histogram a voltage trace over the paper's 0.90–1.05 V axis.

    Out-of-range cycles are clipped into the end bins so the histogram
    always sums to 100 %.
    """
    v = np.asarray(voltage, dtype=float)
    if v.size == 0:
        raise ValueError("empty voltage trace")
    if not v_hi > v_lo:
        raise ValueError("v_hi must exceed v_lo")
    if bins < 1:
        raise ValueError("bins must be positive")
    clipped = np.clip(v, v_lo, np.nextafter(v_hi, v_lo))
    counts, edges = np.histogram(clipped, bins=bins, range=(v_lo, v_hi))
    return VoltageHistogram(edges=edges, percent=100.0 * counts / v.size)

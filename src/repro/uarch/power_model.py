"""Wattch-style activity-based power accounting.

Per-cycle power is the sum, over microarchitectural structures, of an
access-proportional dynamic term plus a conditional-clocking residual for
idle structures (Wattch's ``cc3`` scheme: gated-off units still draw a
fraction of their active power).  With the paper's Vdd = 1.0 V, one watt is
one ampere, so the model emits per-cycle *current* directly (§3.2).

The absolute numbers are chosen to land in the envelope of a 3 GHz
high-performance core of the era — roughly 13 A fully stalled to ~55 A at
peak issue — because the paper's phenomena depend on the *dynamic range*
and *event structure* of the current, not on its absolute calibration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

__all__ = ["ActivityCounters", "UnitPower", "WattchPowerModel", "ClockGating"]


class ActivityCounters:
    """Per-cycle activity, reset every cycle by the pipeline."""

    __slots__ = (
        "fetches",
        "icache_accesses",
        "bpred_lookups",
        "decoded",
        "dispatched",
        "issued_ialu",
        "issued_imult",
        "issued_fpalu",
        "issued_fpmult",
        "lsq_issues",
        "dcache_accesses",
        "l2_accesses",
        "memory_accesses",
        "wakeups",
        "completions",
        "regfile_reads",
        "regfile_writes",
        "committed",
        "injected_noops",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero all counters (start of cycle)."""
        for name in self.__slots__:
            setattr(self, name, 0)


class ClockGating(Enum):
    """Conditional-clocking styles (Wattch's cc1/cc3 spectrum)."""

    NONE = "none"  # idle units draw full active power
    CC3 = "cc3"  # idle units draw a fixed fraction (default)
    IDEAL = "ideal"  # idle units draw nothing


@dataclass(frozen=True)
class UnitPower:
    """One structure's power characteristics (amps at Vdd = 1 V)."""

    name: str
    counter: str  # ActivityCounters field (or "" for always-on)
    per_access: float
    idle: float
    max_per_cycle: int  # structural bound, for the NONE gating style


@dataclass
class WattchPowerModel:
    """Maps per-cycle activity to per-cycle current.

    Parameters
    ----------
    gating:
        Conditional-clocking style; ``CC3`` (default) reproduces the
        activity-sensitive behaviour the paper's current traces show.
    idle_fraction:
        Fraction of active power an idle unit draws under ``CC3``.
    """

    gating: ClockGating = ClockGating.CC3
    idle_fraction: float = 0.10
    clock_tree: float = 8.0
    static: float = 3.0
    units: tuple[UnitPower, ...] = field(default_factory=lambda: _DEFAULT_UNITS)

    def __post_init__(self) -> None:
        if not 0.0 <= self.idle_fraction <= 1.0:
            raise ValueError("idle_fraction must be in [0, 1]")

    def unit_currents(self, activity: ActivityCounters) -> dict[str, float]:
        """Per-structure current draw for one cycle's activity.

        Keys are unit names plus ``clock``, ``static`` and ``noops``; the
        values sum to exactly :meth:`current` (tested).  This is the
        Wattch-style power-breakdown view.
        """
        out = {"clock": self.clock_tree, "static": self.static}
        for unit in self.units:
            count = getattr(activity, unit.counter)
            if self.gating is ClockGating.NONE:
                out[unit.name] = unit.per_access * unit.max_per_cycle
            elif count > 0:
                out[unit.name] = unit.per_access * count
            elif self.gating is ClockGating.CC3:
                out[unit.name] = unit.idle
            else:
                out[unit.name] = 0.0
        out["noops"] = 4.0 * activity.injected_noops
        return out

    def current(self, activity: ActivityCounters) -> float:
        """Per-cycle current (amperes) for the observed activity."""
        total = self.clock_tree + self.static
        for unit in self.units:
            count = getattr(activity, unit.counter)
            if self.gating is ClockGating.NONE:
                total += unit.per_access * unit.max_per_cycle
            elif count > 0:
                total += unit.per_access * count
            elif self.gating is ClockGating.CC3:
                total += unit.idle
        # Injected no-ops burn ALU + window + bus power without doing work.
        total += 4.0 * activity.injected_noops
        return total

    @property
    def min_current(self) -> float:
        """Fully-stalled current draw (all units idle)."""
        floor = self.clock_tree + self.static
        if self.gating is ClockGating.CC3:
            floor += sum(u.idle for u in self.units)
        elif self.gating is ClockGating.NONE:
            floor += sum(u.per_access * u.max_per_cycle for u in self.units)
        return floor

    @property
    def max_current(self) -> float:
        """Structural peak draw (every unit at full activity, max no-ops)."""
        peak = self.clock_tree + self.static
        peak += sum(u.per_access * u.max_per_cycle for u in self.units)
        return peak


_DEFAULT_UNITS: tuple[UnitPower, ...] = (
    UnitPower("icache", "icache_accesses", 4.0, 0.40, 1),
    UnitPower("bpred", "bpred_lookups", 1.2, 0.12, 4),
    UnitPower("decode_rename", "decoded", 1.4, 0.30, 4),
    UnitPower("window_write", "dispatched", 1.0, 0.20, 4),
    # Window select/read power is folded into the per-FU issue costs.
    UnitPower("ialu", "issued_ialu", 3.6, 0.36, 4),
    UnitPower("imult", "issued_imult", 5.2, 0.20, 1),
    UnitPower("fpalu", "issued_fpalu", 5.2, 0.36, 2),
    UnitPower("fpmult", "issued_fpmult", 6.4, 0.24, 1),
    UnitPower("lsq", "lsq_issues", 1.0, 0.24, 2),
    UnitPower("dcache", "dcache_accesses", 3.2, 0.60, 2),
    UnitPower("l2", "l2_accesses", 9.0, 1.00, 1),
    UnitPower("membus", "memory_accesses", 5.0, 0.20, 1),
    UnitPower("wakeup", "wakeups", 0.60, 0.16, 6),
    UnitPower("resultbus", "completions", 0.70, 0.16, 6),
    UnitPower("regfile_read", "regfile_reads", 0.80, 0.20, 8),
    UnitPower("regfile_write", "regfile_writes", 0.80, 0.20, 6),
    UnitPower("commit", "committed", 0.60, 0.16, 4),
)

"""Run-level statistics and per-cycle event traces.

§4.3 of the paper correlates voltage behaviour with architectural events
(L2 misses above all), so the simulator records, besides aggregate
counters, a per-cycle flag telling whether an L2-missing access was
outstanding — the signal behind Figures 10–12.
"""

from __future__ import annotations

from dataclasses import dataclass


__all__ = ["RunStatistics"]


@dataclass
class RunStatistics:
    """Aggregate counters for one simulation run."""

    cycles: int = 0
    fetched: int = 0
    dispatched: int = 0
    issued: int = 0
    committed: int = 0
    branches: int = 0
    mispredictions: int = 0
    noops_injected: int = 0
    store_forwards: int = 0  # loads served from an in-flight store
    stall_cycles: int = 0  # cycles the dI/dt controller held issue
    l1i_misses: int = 0
    l1d_misses: int = 0
    l2_misses: int = 0
    l1d_accesses: int = 0
    l2_accesses: int = 0

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def misprediction_rate(self) -> float:
        """Fraction of executed branches that were mispredicted."""
        return self.mispredictions / self.branches if self.branches else 0.0

    @property
    def l2_miss_rate(self) -> float:
        """L2 local miss ratio."""
        return self.l2_misses / self.l2_accesses if self.l2_accesses else 0.0

    @property
    def l2_mpki(self) -> float:
        """L2 misses per thousand committed instructions."""
        return 1000.0 * self.l2_misses / self.committed if self.committed else 0.0

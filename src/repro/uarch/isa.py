"""Instruction model consumed by the pipeline.

The paper's results never depend on Alpha instruction semantics — only on
the *resource usage* of the dynamic instruction stream (which functional
unit, which memory address, whether a branch was taken, and which earlier
instructions it depends on).  An :class:`Instruction` therefore carries
exactly that: an operation class, up to two producer distances, an address
for memory/branch operations, and the actual branch outcome against which
the predictor will be graded.
"""

from __future__ import annotations

from enum import IntEnum

__all__ = ["OpClass", "Instruction", "MEM_OPS", "FU_LATENCY_FIELD"]


class OpClass(IntEnum):
    """Functional-unit class (matches Table 1's FU inventory)."""

    IALU = 0
    IMULT = 1
    IDIV = 2
    FPALU = 3
    FPMULT = 4
    FPDIV = 5
    LOAD = 6
    STORE = 7
    BRANCH = 8
    NOP = 9


MEM_OPS = (OpClass.LOAD, OpClass.STORE)

#: ProcessorConfig attribute holding each class's execution latency.
FU_LATENCY_FIELD = {
    OpClass.IALU: "ialu_latency",
    OpClass.IMULT: "imult_latency",
    OpClass.IDIV: "idiv_latency",
    OpClass.FPALU: "fpalu_latency",
    OpClass.FPMULT: "fpmult_latency",
    OpClass.FPDIV: "fpdiv_latency",
    OpClass.BRANCH: "ialu_latency",
    OpClass.NOP: "ialu_latency",
}


class Instruction:
    """One dynamic instruction.

    Parameters
    ----------
    op:
        Operation class.
    pc:
        Byte address of the instruction (drives I-cache and predictor).
    src1_dist, src2_dist:
        Distances (in dynamic instructions) to the producers of the two
        source operands; 0 means the operand needs no in-flight producer.
    addr:
        Effective address for loads/stores, branch target for branches.
    taken:
        Actual outcome for branches.
    is_call / is_return:
        Drive the return-address stack.
    """

    __slots__ = (
        "op",
        "pc",
        "src1_dist",
        "src2_dist",
        "addr",
        "taken",
        "is_call",
        "is_return",
    )

    def __init__(
        self,
        op: OpClass,
        pc: int = 0,
        src1_dist: int = 0,
        src2_dist: int = 0,
        addr: int = 0,
        taken: bool = False,
        is_call: bool = False,
        is_return: bool = False,
    ) -> None:
        if src1_dist < 0 or src2_dist < 0:
            raise ValueError("dependency distances must be non-negative")
        self.op = op
        self.pc = pc
        self.src1_dist = src1_dist
        self.src2_dist = src2_dist
        self.addr = addr
        self.taken = taken
        self.is_call = is_call
        self.is_return = is_return

    @property
    def is_mem(self) -> bool:
        """Does the instruction occupy an LSQ slot?"""
        return self.op in MEM_OPS

    @property
    def is_branch(self) -> bool:
        """Does the instruction consult the branch predictor?"""
        return self.op is OpClass.BRANCH

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Instruction({self.op.name}, pc={self.pc:#x}, "
            f"deps=({self.src1_dist},{self.src2_dist}))"
        )

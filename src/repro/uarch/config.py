"""Processor configuration (Table 1 of the paper).

The paper's machine: a 3.0 GHz, Alpha-21264-like out-of-order superscalar
modeled with a modified Wattch/SimpleScalar — 4-wide fetch/decode, 80-entry
RUU, 40-entry LSQ, deep front end with a 12-cycle branch penalty, combined
bimodal/gshare predictor, and a three-level memory hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ProcessorConfig", "CacheConfig", "TABLE_1"]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    size_bytes: int
    ways: int
    line_bytes: int
    latency: int  # cycles on hit

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.ways <= 0 or self.line_bytes <= 0:
            raise ValueError("cache geometry must be positive")
        if self.size_bytes % (self.ways * self.line_bytes) != 0:
            raise ValueError("size must divide evenly into ways * lines")
        if self.latency < 1:
            raise ValueError("latency must be at least one cycle")

    @property
    def sets(self) -> int:
        """Number of sets."""
        return self.size_bytes // (self.ways * self.line_bytes)


@dataclass(frozen=True)
class ProcessorConfig:
    """Table 1, field for field (defaults are the paper's values)."""

    # Execution core
    clock_hz: float = 3.0e9
    vdd: float = 1.0
    ruu_size: int = 80
    lsq_size: int = 40
    int_alus: int = 4
    int_mult_div: int = 1
    fp_alus: int = 2
    fp_mult_div: int = 1
    memory_ports: int = 2

    # Front end
    fetch_width: int = 4
    decode_width: int = 4
    commit_width: int = 4
    issue_width: int = 4
    fetch_queue_size: int = 16
    branch_penalty: int = 12

    # Branch prediction
    predictor_kind: str = "combined"  # "combined" | "bimodal" | "gshare"
    bimod_entries: int = 4096
    gshare_entries: int = 4096
    gshare_history: int = 12
    chooser_entries: int = 4096
    btb_entries: int = 1024
    btb_ways: int = 2
    ras_entries: int = 32

    # Memory hierarchy
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(64 * 1024, 2, 64, 3)
    )
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(64 * 1024, 2, 64, 3)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(2 * 1024 * 1024, 4, 64, 16)
    )
    memory_latency: int = 250
    # SimpleScalar leaves miss concurrency unconstrained; Table 1 is
    # silent on MSHRs, so the default bound (one per LSQ load slot)
    # never binds — lower it explicitly for MLP studies.
    mshr_entries: int = 40
    prefetch_next_line: bool = False  # sequential prefetch on L1D misses

    # Functional-unit latencies (issue-to-complete, cycles)
    ialu_latency: int = 1
    imult_latency: int = 3
    idiv_latency: int = 20
    fpalu_latency: int = 2
    fpmult_latency: int = 4
    fpdiv_latency: int = 12

    def __post_init__(self) -> None:
        positive = (
            self.ruu_size,
            self.lsq_size,
            self.fetch_width,
            self.decode_width,
            self.commit_width,
            self.issue_width,
            self.memory_ports,
            self.branch_penalty,
        )
        if any(v <= 0 for v in positive):
            raise ValueError("core widths and sizes must be positive")
        if self.lsq_size > self.ruu_size:
            raise ValueError("LSQ cannot exceed the RUU")
        if self.mshr_entries <= 0:
            raise ValueError("need at least one MSHR")
        if self.predictor_kind not in ("combined", "bimodal", "gshare"):
            raise ValueError("unknown predictor_kind")


#: The exact configuration of Table 1.
TABLE_1 = ProcessorConfig()

"""Saving, loading and importing current traces.

Two use cases:

* **Persistence** — simulation runs are expensive; ``save_result`` /
  ``load_result`` round-trip a :class:`SimulationResult` through a
  compressed ``.npz`` so sweeps can be resumed across processes.
* **External traces** — the paper's pipeline only needs a per-cycle
  current waveform, so traces produced elsewhere (gem5+McPAT, a silicon
  current probe, another simulator) can be imported with
  ``import_current_trace`` and fed straight into the §4 estimator and §5
  monitors.

The on-disk format is a plain ``numpy`` archive with a small schema
(``format`` + ``version`` keys) so files remain readable without this
library.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .events import RunStatistics
from .simulator import SimulationResult

__all__ = ["save_result", "load_result", "import_current_trace"]

_FORMAT = "repro-current-trace"
_VERSION = 1

#: RunStatistics fields persisted alongside the trace.
_STAT_FIELDS = (
    "cycles",
    "fetched",
    "dispatched",
    "issued",
    "committed",
    "branches",
    "mispredictions",
    "noops_injected",
    "store_forwards",
    "stall_cycles",
    "l1i_misses",
    "l1d_misses",
    "l2_misses",
    "l1d_accesses",
    "l2_accesses",
)


def save_result(result: SimulationResult, path: str | Path) -> Path:
    """Write a simulation result to a compressed ``.npz`` archive."""
    path = Path(path)
    stats = np.array(
        [getattr(result.stats, f) for f in _STAT_FIELDS], dtype=np.int64
    )
    np.savez_compressed(
        path,
        format=np.str_(_FORMAT),
        version=np.int64(_VERSION),
        name=np.str_(result.name),
        current=result.current.astype(np.float64),
        l2_outstanding=result.l2_outstanding.astype(bool),
        stats=stats,
    )
    # numpy appends .npz when missing; report the real location.
    return path if path.suffix == ".npz" else path.with_suffix(
        path.suffix + ".npz"
    )


def load_result(path: str | Path) -> SimulationResult:
    """Read a result previously written by :func:`save_result`."""
    with np.load(Path(path), allow_pickle=False) as data:
        if str(data.get("format", "")) != _FORMAT:
            raise ValueError(f"{path} is not a {_FORMAT} archive")
        version = int(data["version"])
        if version > _VERSION:
            raise ValueError(
                f"{path} uses format version {version}; this library "
                f"reads up to {_VERSION}"
            )
        stats = RunStatistics(
            **{f: int(v) for f, v in zip(_STAT_FIELDS, data["stats"])}
        )
        return SimulationResult(
            name=str(data["name"]),
            current=np.asarray(data["current"], dtype=float),
            l2_outstanding=np.asarray(data["l2_outstanding"], dtype=bool),
            stats=stats,
        )


def import_current_trace(
    path: str | Path,
    name: str | None = None,
    column: int = 0,
) -> SimulationResult:
    """Import an external per-cycle current trace.

    Accepts ``.npy`` (1-D float array), ``.npz`` (our own format, or any
    archive with a ``current`` array) and plain text (one sample per
    line, or whitespace-separated columns with ``column`` selecting the
    amperes column — the shape gem5/McPAT post-processing scripts
    usually emit).

    The returned :class:`SimulationResult` carries empty run statistics
    and no event log; the characterization pipeline needs neither.
    """
    path = Path(path)
    if path.suffix == ".npy":
        current = np.load(path, allow_pickle=False)
    elif path.suffix == ".npz":
        with np.load(path, allow_pickle=False) as data:
            if str(data.get("format", "")) == _FORMAT:
                return load_result(path)
            if "current" not in data:
                raise ValueError(f"{path} has no 'current' array")
            current = np.asarray(data["current"])
    else:
        table = np.loadtxt(path, ndmin=2)
        if column >= table.shape[1]:
            raise ValueError(
                f"column {column} out of range for {table.shape[1]}-column file"
            )
        current = table[:, column]
    current = np.asarray(current, dtype=float).ravel()
    if current.size == 0:
        raise ValueError(f"{path} contains no samples")
    if not np.all(np.isfinite(current)):
        raise ValueError(f"{path} contains non-finite samples")
    if np.any(current < 0):
        raise ValueError(f"{path} contains negative current samples")
    return SimulationResult(
        name=name or path.stem,
        current=current,
        l2_outstanding=np.zeros(current.size, dtype=bool),
        stats=RunStatistics(cycles=current.size),
    )

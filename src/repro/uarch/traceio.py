"""Saving, loading and importing current traces.

Two use cases:

* **Persistence** — simulation runs are expensive; ``save_result`` /
  ``load_result`` round-trip a :class:`SimulationResult` through a
  compressed ``.npz`` so sweeps can be resumed across processes.
* **External traces** — the paper's pipeline only needs a per-cycle
  current waveform, so traces produced elsewhere (gem5+McPAT, a silicon
  current probe, another simulator) can be imported with
  ``import_current_trace`` and fed straight into the §4 estimator and §5
  monitors.

The on-disk format is a plain ``numpy`` archive with a small schema
(``format`` + ``version`` keys) so files remain readable without this
library.
"""

from __future__ import annotations

import io
import itertools
from pathlib import Path

import numpy as np

from ..errors import SpecError
from .events import RunStatistics
from .simulator import SimulationResult

__all__ = [
    "save_result",
    "load_result",
    "import_current_trace",
    "sanitize_current",
]

_FORMAT = "repro-current-trace"
_VERSION = 1

#: RunStatistics fields persisted alongside the trace.
_STAT_FIELDS = (
    "cycles",
    "fetched",
    "dispatched",
    "issued",
    "committed",
    "branches",
    "mispredictions",
    "noops_injected",
    "store_forwards",
    "stall_cycles",
    "l1i_misses",
    "l1d_misses",
    "l2_misses",
    "l1d_accesses",
    "l2_accesses",
)


def save_result(result: SimulationResult, path: str | Path) -> Path:
    """Write a simulation result to a compressed ``.npz`` archive."""
    path = Path(path)
    stats = np.array(
        [getattr(result.stats, f) for f in _STAT_FIELDS], dtype=np.int64
    )
    np.savez_compressed(
        path,
        format=np.str_(_FORMAT),
        version=np.int64(_VERSION),
        name=np.str_(result.name),
        current=result.current.astype(np.float64),
        l2_outstanding=result.l2_outstanding.astype(bool),
        stats=stats,
    )
    # numpy appends .npz when missing; report the real location.
    return path if path.suffix == ".npz" else path.with_suffix(
        path.suffix + ".npz"
    )


def load_result(path: str | Path) -> SimulationResult:
    """Read a result previously written by :func:`save_result`."""
    with np.load(Path(path), allow_pickle=False) as data:
        if str(data.get("format", "")) != _FORMAT:
            raise SpecError(
                f"{path} is not a {_FORMAT} archive", file=str(path)
            )
        version = int(data["version"])
        if version > _VERSION:
            raise SpecError(
                f"{path} uses format version {version}; this library "
                f"reads up to {_VERSION}",
                file=str(path),
            )
        stats = RunStatistics(
            **{f: int(v) for f, v in zip(_STAT_FIELDS, data["stats"])}
        )
        return SimulationResult(
            name=str(data["name"]),
            current=np.asarray(data["current"], dtype=float),
            l2_outstanding=np.asarray(data["l2_outstanding"], dtype=bool),
            stats=stats,
        )


#: Text-import block size: lines parsed (and NaN-guarded) per batch, so
#: a multi-GB probe dump never materializes twice in memory.
_TEXT_BLOCK_LINES = 65536


def _validate_policy(nan_policy: str) -> None:
    if nan_policy not in ("error", "drop", "zero"):
        raise SpecError(
            f"nan_policy must be 'error', 'drop' or 'zero', "
            f"got {nan_policy!r}"
        )


def _load_text_trace(
    path: Path, column: int, nan_policy: str
) -> np.ndarray:
    """Stream a whitespace-separated text trace, block by block.

    Each block of :data:`_TEXT_BLOCK_LINES` data lines is parsed,
    column-selected and NaN/inf-guarded before the next is read, so the
    peak footprint is one block plus the accumulated amperes column —
    not the whole multi-column table.  With ``nan_policy="error"`` the
    raised :class:`~repro.errors.SpecError` carries the offending data
    row index (``row`` detail), which the whole-file path could only
    report after loading everything.
    """
    _validate_policy(nan_policy)
    pieces: list[np.ndarray] = []
    row_base = 0
    with open(path) as fh:
        while True:
            lines = list(itertools.islice(fh, _TEXT_BLOCK_LINES))
            if not lines:
                break
            block = np.loadtxt(io.StringIO("".join(lines)), ndmin=2)
            if block.size == 0:
                continue
            if column >= block.shape[1]:
                raise SpecError(
                    f"{column} out of range for {block.shape[1]}-column "
                    f"file {path}",
                    file=str(path),
                )
            col = block[:, column]
            finite = np.isfinite(col)
            if not finite.all():
                if nan_policy == "error":
                    first = row_base + int(np.flatnonzero(~finite)[0])
                    raise SpecError(
                        f"{path} contains non-finite current samples "
                        f"(first at data row {first}); pass "
                        f"nan_policy='drop' or 'zero' to sanitize instead",
                        file=str(path),
                        row=first,
                    )
                col = (
                    col[finite]
                    if nan_policy == "drop"
                    else np.where(finite, col, 0.0)
                )
            row_base += block.shape[0]
            pieces.append(np.asarray(col, dtype=float))
    if not pieces:
        return np.empty(0, dtype=float)
    return np.concatenate(pieces)


def sanitize_current(
    current: np.ndarray,
    origin: str,
    nan_policy: str = "error",
    benchmark: str | None = None,
) -> np.ndarray:
    """Validate (or repair) the non-finite samples of a current trace.

    NaN or infinite amperes silently poison everything downstream — the
    wavelet transform propagates one NaN into every coefficient of the
    window, and the convolution engine smears it across the whole
    voltage trace — so they must be dealt with at the import boundary.
    Errors name both the source file (``origin``) and, when given, the
    ``benchmark`` the trace belongs to, so a failure deep inside a batch
    points straight at the offending input.

    ``nan_policy`` decides how:

    * ``"error"`` (default) — raise :class:`~repro.errors.SpecError`
      (a ``ValueError``) naming how many NaN / infinite samples there
      are and where the first one sits;
    * ``"drop"`` — remove the offending samples (shortens the trace);
    * ``"zero"`` — replace them with 0.0 A (keeps cycle alignment).
    """
    _validate_policy(nan_policy)
    finite = np.isfinite(current)
    if finite.all():
        return current
    nans = int(np.isnan(current).sum())
    infs = int(np.isinf(current).sum())
    if nan_policy == "error":
        first = int(np.flatnonzero(~finite)[0])
        where = f"benchmark {benchmark!r} ({origin})" if benchmark else origin
        raise SpecError(
            f"{where} contains {nans} NaN and {infs} infinite current "
            f"samples (first at index {first} of {current.size}); pass "
            f"nan_policy='drop' or 'zero' to sanitize instead",
            file=origin,
            benchmark=benchmark,
            nan_samples=nans,
            inf_samples=infs,
        )
    if nan_policy == "drop":
        return current[finite]
    repaired = current.copy()
    repaired[~finite] = 0.0
    return repaired


def import_current_trace(
    path: str | Path,
    name: str | None = None,
    column: int = 0,
    nan_policy: str = "error",
) -> SimulationResult:
    """Import an external per-cycle current trace.

    Accepts ``.npy`` (1-D float array), ``.npz`` (our own format, or any
    archive with a ``current`` array) and plain text (one sample per
    line, or whitespace-separated columns with ``column`` selecting the
    amperes column — the shape gem5/McPAT post-processing scripts
    usually emit).

    Every import path — including our own ``.npz`` archives — passes
    through :func:`sanitize_current`, so NaN and infinite samples are
    rejected with a clear error (or repaired, per ``nan_policy``) rather
    than silently propagating into the wavelet transform.  Text files
    are streamed in bounded blocks rather than loaded whole, so a
    multi-GB probe dump imports at constant memory and a non-finite
    sample is rejected naming its data row (``row`` error detail).

    The returned :class:`SimulationResult` carries empty run statistics
    and no event log; the characterization pipeline needs neither.
    """
    path = Path(path)
    if path.suffix == ".npy":
        current = np.load(path, allow_pickle=False)
    elif path.suffix == ".npz":
        with np.load(path, allow_pickle=False) as data:
            if str(data.get("format", "")) == _FORMAT:
                result = load_result(path)
                current = sanitize_current(
                    result.current,
                    str(path),
                    nan_policy,
                    benchmark=name or result.name,
                )
                if current is result.current:
                    return result
                return SimulationResult(
                    name=name or result.name,
                    current=current,
                    l2_outstanding=np.zeros(current.size, dtype=bool),
                    stats=RunStatistics(cycles=current.size),
                )
            if "current" not in data:
                raise SpecError(
                    f"{path} has no 'current' array", file=str(path)
                )
            current = np.asarray(data["current"])
    else:
        current = _load_text_trace(path, column, nan_policy)
    current = np.asarray(current, dtype=float).ravel()
    bench = name or path.stem
    if current.size == 0:
        raise SpecError(
            f"{path} contains no samples", file=str(path), benchmark=bench
        )
    current = sanitize_current(current, str(path), nan_policy, benchmark=bench)
    if current.size == 0:
        raise SpecError(
            f"{path} contains no finite samples",
            file=str(path),
            benchmark=bench,
        )
    if np.any(current < 0):
        raise SpecError(
            f"{path} contains negative current samples",
            file=str(path),
            benchmark=bench,
        )
    return SimulationResult(
        name=name or path.stem,
        current=current,
        l2_outstanding=np.zeros(current.size, dtype=bool),
        stats=RunStatistics(cycles=current.size),
    )

"""Top-level simulation driver: workload in, current trace out (§3.2).

Wraps the pipeline into a one-call API returning a
:class:`SimulationResult` — the per-cycle current trace plus the per-cycle
L2-miss-outstanding flag and run statistics.  A process-level cache keyed
on (benchmark, cycles, seed) keeps the 26-benchmark experiment sweeps from
re-simulating the same traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Protocol

import numpy as np

from ..obs import trace as obs
from ..workloads.generator import generate, prewarm_caches
from ..workloads.spec import WorkloadProfile, get_profile
from .config import ProcessorConfig, TABLE_1
from .events import RunStatistics
from .isa import Instruction
from .pipeline import Pipeline
from .power_model import WattchPowerModel

__all__ = ["SimulationResult", "Simulator", "simulate_benchmark", "DidtController"]


class DidtController(Protocol):
    """Closed-loop dI/dt controller interface (§5's actuation loop).

    After every cycle the simulator feeds the controller the cycle's
    current draw; the controller answers with the actuation for the *next*
    cycle: whether to stall issue and how many no-ops to inject.
    """

    def update(self, current: float) -> tuple[bool, int]:
        """Observe one cycle; return (stall_issue, inject_noops)."""
        ...


@dataclass
class SimulationResult:
    """Everything a characterization or control experiment consumes."""

    name: str
    current: np.ndarray  # per-cycle amperes
    l2_outstanding: np.ndarray  # per-cycle bool: L1-missing load in flight
    stats: RunStatistics

    @property
    def cycles(self) -> int:
        """Simulated cycle count."""
        return len(self.current)

    @property
    def mean_current(self) -> float:
        """Average amperage over the run."""
        return float(self.current.mean()) if self.cycles else 0.0


def _record_run(result: SimulationResult, pipe: Pipeline) -> None:
    """Fold one finished run's aggregate activity into the obs registry.

    Recorded once per run (never per cycle), so the simulator's hot loop
    carries zero instrumentation overhead.
    """
    s = result.stats
    obs.counter_inc(
        "sim_runs_total", 1, "simulation runs", benchmark=result.name
    )
    obs.counter_inc("sim_cycles_total", s.cycles, "simulated machine cycles")
    for kind in (
        "fetched",
        "dispatched",
        "issued",
        "committed",
        "branches",
        "mispredictions",
        "noops_injected",
        "store_forwards",
        "stall_cycles",
        "l1i_misses",
        "l1d_misses",
        "l2_misses",
    ):
        count = getattr(s, kind)
        if count:
            obs.counter_inc(
                "sim_events_total",
                count,
                "pipeline activity by event kind",
                kind=kind,
            )
    obs.gauge_set(
        "sim_ipc", s.ipc, "last run's committed IPC", benchmark=result.name
    )
    obs.gauge_set(
        "sim_mean_current",
        result.mean_current,
        "last run's mean current draw (A)",
        benchmark=result.name,
    )
    # per-funit activity, when the run tracked the power breakdown
    try:
        breakdown = pipe.power_breakdown
    except RuntimeError:
        breakdown = {}
    for unit, amps in breakdown.items():
        obs.gauge_set(
            "sim_funit_current",
            amps,
            "per-functional-unit mean current (A)",
            unit=unit,
            benchmark=result.name,
        )


class Simulator:
    """Configurable driver around :class:`~repro.uarch.pipeline.Pipeline`."""

    def __init__(
        self,
        config: ProcessorConfig = TABLE_1,
        power_model: WattchPowerModel | None = None,
    ) -> None:
        self.config = config
        self.power_model = power_model

    def run(
        self,
        stream: Iterable[Instruction] | Iterator[Instruction],
        max_cycles: int,
        name: str = "trace",
        controller: DidtController | None = None,
    ) -> SimulationResult:
        """Simulate until ``max_cycles`` or the stream drains.

        With a ``controller``, its decisions are applied with a one-cycle
        delay (sensor-to-actuator latency), exactly as a hardware monitor
        would act.
        """
        if max_cycles < 0:
            raise ValueError("max_cycles must be non-negative")
        pipe = Pipeline(self.config, iter(stream), self.power_model)
        current = np.empty(max_cycles)
        l2_flag = np.empty(max_cycles, dtype=bool)
        n = 0
        with obs.span(
            "uarch.simulate",
            benchmark=name,
            max_cycles=max_cycles,
            controlled=controller is not None,
        ):
            for _ in range(max_cycles):
                amps = pipe.tick()
                current[n] = amps
                l2_flag[n] = pipe.l2_miss_outstanding
                n += 1
                if controller is not None:
                    stall, noops = controller.update(amps)
                    pipe.stall_issue = stall
                    pipe.inject_noops = noops
                if pipe.drained:
                    break
        result = SimulationResult(
            name=name,
            current=current[:n],
            l2_outstanding=l2_flag[:n],
            stats=pipe.stats,
        )
        if obs.ENABLED:
            _record_run(result, pipe)
        return result


_CACHE: dict[tuple[str, int, int | None, int], SimulationResult] = {}


def simulate_benchmark(
    benchmark: str | WorkloadProfile,
    cycles: int = 65536,
    seed: int | None = None,
    config: ProcessorConfig = TABLE_1,
    use_cache: bool = True,
    warmup_cycles: int = 4096,
) -> SimulationResult:
    """Simulate one SPEC2000 workload model and return its trace.

    Caches are pre-warmed with the profile's working sets and the machine
    runs ``warmup_cycles`` before measurement begins, standing in for a
    SimPoint interval's preamble.  Results are cached per
    (name, cycles, seed, warmup) for the default configuration, since the
    experiment sweeps revisit the same traces.
    """
    profile = get_profile(benchmark) if isinstance(benchmark, str) else benchmark
    key = (profile.name, cycles, seed, warmup_cycles)
    cacheable = use_cache and config is TABLE_1
    if cacheable and key in _CACHE:
        obs.counter_inc(
            "sim_memo_hits_total", 1, "in-process simulation memo hits"
        )
        return _CACHE[key]
    with obs.span(
        "uarch.simulate",
        benchmark=profile.name,
        max_cycles=cycles,
        warmup_cycles=warmup_cycles,
    ):
        sim = Simulator(config)
        stream = generate(profile, seed)
        pipe = Pipeline(config, iter(stream), sim.power_model)
        prewarm_caches(pipe.caches, profile)
        # Warm-up interval: run the machine without recording, so predictors
        # train and the pipeline fills (the SimPoint interval's preamble).
        for _ in range(warmup_cycles):
            pipe.tick()
        pipe.stats = RunStatistics()
        current = np.empty(cycles)
        l2_flag = np.empty(cycles, dtype=bool)
        n = 0
        for _ in range(cycles):
            current[n] = pipe.tick()
            l2_flag[n] = pipe.l2_miss_outstanding
            n += 1
            if pipe.drained:
                break
    result = SimulationResult(
        name=profile.name,
        current=current[:n],
        l2_outstanding=l2_flag[:n],
        stats=pipe.stats,
    )
    if obs.ENABLED:
        _record_run(result, pipe)
    if cacheable:
        _CACHE[key] = result
    return result

"""Cache hierarchy: Table 1's L1 I/D, unified L2 and main memory.

Set-associative caches with true LRU replacement.  The hierarchy returns,
for each access, the total latency and the deepest level that serviced it —
the pipeline charges the latency, and the characterization code uses the
service level to correlate voltage behaviour with L2 misses (§4.3).
"""

from __future__ import annotations

from enum import IntEnum

from .config import CacheConfig, ProcessorConfig

__all__ = ["ServiceLevel", "Cache", "CacheHierarchy"]


class ServiceLevel(IntEnum):
    """Deepest structure touched by an access."""

    L1 = 1
    L2 = 2
    MEMORY = 3


class Cache:
    """One set-associative cache level with LRU replacement."""

    def __init__(self, config: CacheConfig, name: str) -> None:
        self.config = config
        self.name = name
        self._offset_bits = config.line_bytes.bit_length() - 1
        if config.sets & (config.sets - 1):
            raise ValueError("set count must be a power of two")
        self._set_mask = config.sets - 1
        # Per set: list of tags, most recently used first.
        self._sets: list[list[int]] = [[] for _ in range(config.sets)]
        self.hits = 0
        self.misses = 0

    def _locate(self, addr: int) -> tuple[int, int]:
        line = addr >> self._offset_bits
        return line & self._set_mask, line

    def access(self, addr: int) -> bool:
        """Access one address; returns True on hit.  Misses allocate."""
        idx, tag = self._locate(addr)
        tags = self._sets[idx]
        try:
            pos = tags.index(tag)
        except ValueError:
            self.misses += 1
            tags.insert(0, tag)
            del tags[self.config.ways :]
            return False
        if pos:
            tags.insert(0, tags.pop(pos))
        self.hits += 1
        return True

    def probe(self, addr: int) -> bool:
        """Check residency without updating LRU or counters."""
        idx, tag = self._locate(addr)
        return tag in self._sets[idx]

    @property
    def accesses(self) -> int:
        """Total accesses so far."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Miss ratio over the run."""
        return self.misses / self.accesses if self.accesses else 0.0

    def flush(self) -> None:
        """Invalidate all lines (counters are preserved)."""
        for tags in self._sets:
            tags.clear()


class CacheHierarchy:
    """L1I + L1D backed by a unified L2 backed by main memory."""

    def __init__(self, config: ProcessorConfig) -> None:
        self.config = config
        self.l1i = Cache(config.l1i, "L1I")
        self.l1d = Cache(config.l1d, "L1D")
        self.l2 = Cache(config.l2, "L2")
        self.memory_accesses = 0
        self.prefetches = 0

    def _through_l2(self, addr: int, l1_latency: int) -> tuple[int, ServiceLevel]:
        if self.l2.access(addr):
            return l1_latency + self.config.l2.latency, ServiceLevel.L2
        self.memory_accesses += 1
        return (
            l1_latency + self.config.l2.latency + self.config.memory_latency,
            ServiceLevel.MEMORY,
        )

    def prefetch_data(self, addr: int) -> bool:
        """Pull ``addr``'s *next* line toward the L1D (sequential prefetch).

        Returns True when the prefetch had to fetch the line (i.e. it was
        not already L1-resident).  Latency is hidden by the prefetcher;
        only the cache state and the prefetch counter change.
        """
        next_line = addr + self.config.l1d.line_bytes
        if self.l1d.probe(next_line):
            return False
        self.l1d.access(next_line)
        self.l2.access(next_line)
        self.prefetches += 1
        return True

    def access_instruction(self, pc: int) -> tuple[int, ServiceLevel]:
        """Instruction fetch: (total latency, deepest level)."""
        if self.l1i.access(pc):
            return self.config.l1i.latency, ServiceLevel.L1
        return self._through_l2(pc, self.config.l1i.latency)

    def access_data(self, addr: int) -> tuple[int, ServiceLevel]:
        """Data access: (total latency, deepest level)."""
        if self.l1d.access(addr):
            return self.config.l1d.latency, ServiceLevel.L1
        return self._through_l2(addr, self.config.l1d.latency)

"""Functional units: Table 1's execution resources.

ALUs are fully pipelined (a new operation may start every cycle on each
unit); multiply/divide units block for the operation's latency, matching
SimpleScalar's shared IntMult/IntDiv and FPMult/FPDiv units.
"""

from __future__ import annotations

from .config import ProcessorConfig
from .isa import FU_LATENCY_FIELD, OpClass

__all__ = ["FunctionalUnitPool", "FunctionalUnits"]


class FunctionalUnitPool:
    """A pool of identical units.

    ``pipelined`` pools only limit *issues per cycle*; non-pipelined pools
    also keep each unit busy until its operation completes.
    """

    def __init__(self, name: str, count: int, pipelined: bool) -> None:
        if count <= 0:
            raise ValueError("unit count must be positive")
        self.name = name
        self.count = count
        self.pipelined = pipelined
        self._issued_this_cycle = 0
        self._busy_until: list[int] = [0] * count
        self.total_ops = 0

    def begin_cycle(self) -> None:
        """Reset the per-cycle issue limiter."""
        self._issued_this_cycle = 0

    def try_issue(self, cycle: int, latency: int) -> bool:
        """Claim a unit for an operation starting this cycle."""
        if self._issued_this_cycle >= self.count:
            return False
        if not self.pipelined:
            for i, free_at in enumerate(self._busy_until):
                if free_at <= cycle:
                    self._busy_until[i] = cycle + latency
                    break
            else:
                return False
        self._issued_this_cycle += 1
        self.total_ops += 1
        return True


class FunctionalUnits:
    """All of Table 1's pools, with op-class dispatch."""

    def __init__(self, config: ProcessorConfig) -> None:
        self.config = config
        self._pools = {
            OpClass.IALU: FunctionalUnitPool("IntALU", config.int_alus, True),
            OpClass.IMULT: FunctionalUnitPool(
                "IntMultDiv", config.int_mult_div, False
            ),
            OpClass.FPALU: FunctionalUnitPool("FPALU", config.fp_alus, True),
            OpClass.FPMULT: FunctionalUnitPool(
                "FPMultDiv", config.fp_mult_div, False
            ),
        }
        # Divides share the multiply units (SimpleScalar's IntMult/IntDiv).
        self._aliases = {
            OpClass.IDIV: OpClass.IMULT,
            OpClass.FPDIV: OpClass.FPMULT,
            OpClass.BRANCH: OpClass.IALU,
            OpClass.NOP: OpClass.IALU,
        }

    def pool_for(self, op: OpClass) -> FunctionalUnitPool:
        """The pool an op class executes on (loads/stores use the LSQ)."""
        key = self._aliases.get(op, op)
        try:
            return self._pools[key]
        except KeyError:
            raise ValueError(f"{op.name} does not execute on a functional unit")

    def latency_of(self, op: OpClass) -> int:
        """Execution latency for a non-memory op."""
        return getattr(self.config, FU_LATENCY_FIELD[op])

    def begin_cycle(self) -> None:
        """Advance all pools to a new cycle."""
        for pool in self._pools.values():
            pool.begin_cycle()

    def try_issue(self, op: OpClass, cycle: int) -> int | None:
        """Try to start ``op`` this cycle; returns its latency or None."""
        latency = self.latency_of(op)
        if self.pool_for(op).try_issue(cycle, latency):
            return latency
        return None

"""The out-of-order core: fetch → dispatch → issue → writeback → commit.

A trace-driven superscalar model in the SimpleScalar mould (§3.2): a deep
front end feeding an 80-entry RUU and 40-entry LSQ, dependency-driven
dynamic issue onto Table 1's functional units, a combined branch predictor
with the paper's 12-cycle misprediction penalty, and the three-level cache
hierarchy.  Every cycle it tallies microarchitectural activity into the
Wattch power model and emits one per-cycle current sample — the signal all
of the paper's wavelet analyses consume.

Two external control knobs implement the dI/dt actuation mechanisms of §5:
``stall_issue`` (halt instruction issue for a cycle, dropping current) and
``inject_noops`` (issue dummy operations, raising current).
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from .branch import BranchTargetBuffer, ReturnAddressStack, make_predictor
from .caches import CacheHierarchy
from .config import ProcessorConfig
from .events import RunStatistics
from .funits import FunctionalUnits
from .isa import Instruction, OpClass
from .power_model import ActivityCounters, WattchPowerModel

__all__ = ["Pipeline"]


class _Entry:
    """An RUU slot: one in-flight instruction and its dataflow state."""

    __slots__ = (
        "seq",
        "inst",
        "deps",
        "consumers",
        "issued",
        "completed",
        "mispredicted",
        "deep_load",
    )

    def __init__(self, seq: int, inst: Instruction, mispredicted: bool) -> None:
        self.seq = seq
        self.inst = inst
        self.deps = 0
        self.consumers: list[_Entry] = []
        self.issued = False
        self.completed = False
        self.mispredicted = mispredicted
        self.deep_load = False


class Pipeline:
    """Cycle-accurate core model producing a per-cycle current stream.

    Parameters
    ----------
    config:
        Machine parameters (Table 1 by default).
    stream:
        Iterator of dynamic :class:`Instruction` objects (the workload).
    power_model:
        Activity-to-current mapping; defaults to the Wattch-style model.
    """

    def __init__(
        self,
        config: ProcessorConfig,
        stream: Iterator[Instruction],
        power_model: WattchPowerModel | None = None,
        track_breakdown: bool = False,
    ) -> None:
        self.config = config
        self.power = power_model or WattchPowerModel()
        self._stream = iter(stream)
        self._stream_done = False

        self.caches = CacheHierarchy(config)
        self.predictor = make_predictor(config)
        self.btb = BranchTargetBuffer(config.btb_entries, config.btb_ways)
        self.ras = ReturnAddressStack(config.ras_entries)
        self.funits = FunctionalUnits(config)
        self.activity = ActivityCounters()
        self.stats = RunStatistics()

        self.cycle = 0
        self._seq = 0
        self._fetch_stall_until = 0
        self._fetch_blocked = False  # waiting on a mispredicted branch
        self._fetch_buffer: deque[tuple[Instruction, bool]] = deque()
        self._ruu: deque[_Entry] = deque()
        self._lsq_count = 0
        self._pending: dict[int, _Entry] = {}  # seq -> uncompleted entry
        self._ready: list[_Entry] = []
        self._completions: dict[int, list[_Entry]] = {}
        self._mem_outstanding = 0  # loads currently being serviced past L1
        self._pending_stores: dict[int, int] = {}  # addr -> in-flight count
        self._lookahead: Instruction | None = None

        # dI/dt controller hooks (set externally before each tick).
        self.stall_issue = False
        self.inject_noops = 0

        # Optional per-unit energy accounting (off by default: hot path).
        self._track_breakdown = track_breakdown
        self._unit_energy: dict[str, float] = {}

    # -- public api ----------------------------------------------------------

    def tick(self) -> float:
        """Advance one cycle; returns the cycle's current draw in amperes."""
        self.activity.reset()
        self.funits.begin_cycle()
        ports_left = self.config.memory_ports

        ports_left = self._commit(ports_left)
        self._writeback()
        if self.stall_issue:
            self.stats.stall_cycles += 1
        else:
            self._issue(ports_left)
        self._dispatch()
        self._fetch()

        if self.inject_noops:
            self.activity.injected_noops = self.inject_noops
            self.stats.noops_injected += self.inject_noops

        current = self.power.current(self.activity)
        if self._track_breakdown:
            for name, amps in self.power.unit_currents(self.activity).items():
                self._unit_energy[name] = (
                    self._unit_energy.get(name, 0.0) + amps
                )
        self.cycle += 1
        self.stats.cycles = self.cycle
        return current

    @property
    def power_breakdown(self) -> dict[str, float]:
        """Mean per-unit current (amps) so far; needs ``track_breakdown``."""
        if not self._track_breakdown:
            raise RuntimeError("construct the Pipeline with track_breakdown=True")
        if self.cycle == 0:
            return {}
        return {k: v / self.cycle for k, v in self._unit_energy.items()}

    @property
    def drained(self) -> bool:
        """True when the stream ended and the machine has emptied."""
        return self._stream_done and not self._ruu and not self._fetch_buffer

    @property
    def branch_recovery(self) -> bool:
        """Is the front end blocked on a mispredicted branch? (§4.3 signal)"""
        return self._fetch_blocked or self.cycle < self._fetch_stall_until

    @property
    def l2_miss_outstanding(self) -> bool:
        """Is any load currently being serviced past the L1? (§4.3 signal)"""
        return self._mem_outstanding > 0

    # -- pipeline stages (in reverse order to avoid same-cycle races) --------

    def _commit(self, ports_left: int) -> int:
        width = self.config.commit_width
        while width and self._ruu:
            head = self._ruu[0]
            if not head.completed:
                break
            if head.inst.op is OpClass.STORE:
                if ports_left == 0:
                    break
                ports_left -= 1
                self._store_writeback(head.inst.addr)
                remaining = self._pending_stores.get(head.inst.addr, 1) - 1
                if remaining:
                    self._pending_stores[head.inst.addr] = remaining
                else:
                    self._pending_stores.pop(head.inst.addr, None)
            self._ruu.popleft()
            if head.inst.is_mem:
                self._lsq_count -= 1
            self.activity.committed += 1
            self.stats.committed += 1
            width -= 1
        return ports_left

    def _store_writeback(self, addr: int) -> None:
        """Retire a store through the write buffer (charges cache energy)."""
        before_l1 = self.caches.l1d.misses
        before_l2 = self.caches.l2.misses
        self.caches.access_data(addr)
        self.activity.dcache_accesses += 1
        self.stats.l1d_accesses += 1
        if self.caches.l1d.misses != before_l1:
            self.stats.l1d_misses += 1
            self.activity.l2_accesses += 1
            self.stats.l2_accesses += 1
            if self.caches.l2.misses != before_l2:
                self.stats.l2_misses += 1
                self.activity.memory_accesses += 1

    def _writeback(self) -> None:
        done = self._completions.pop(self.cycle, None)
        if not done:
            return
        for entry in done:
            entry.completed = True
            self._pending.pop(entry.seq, None)
            self.activity.completions += 1
            self.activity.regfile_writes += 1
            if entry.deep_load:
                # An L1-missing load finished being serviced.
                self._mem_outstanding -= 1
            for consumer in entry.consumers:
                consumer.deps -= 1
                self.activity.wakeups += 1
                if consumer.deps == 0 and not consumer.issued:
                    self._ready.append(consumer)
            if entry.mispredicted:
                # Resolution: redirect the front end after the penalty.
                self._fetch_blocked = False
                self._fetch_stall_until = max(
                    self._fetch_stall_until,
                    self.cycle + self.config.branch_penalty,
                )

    def _issue(self, ports_left: int) -> None:
        width = self.config.issue_width
        if not self._ready or width == 0:
            return
        leftovers: list[_Entry] = []
        issued = 0
        for entry in self._ready:
            if issued >= width:
                leftovers.append(entry)
                continue
            op = entry.inst.op
            if op is OpClass.LOAD:
                if ports_left == 0:
                    leftovers.append(entry)
                    continue
                if entry.inst.addr in self._pending_stores:
                    # Store-to-load forwarding: an in-flight store to the
                    # same address supplies the data from the LSQ in one
                    # cycle, no cache access.
                    latency = 1
                    self.activity.lsq_issues += 1
                    self.stats.store_forwards += 1
                elif self._mem_outstanding >= self.config.mshr_entries:
                    # All miss-status registers busy: the load must wait.
                    leftovers.append(entry)
                    continue
                else:
                    ports_left -= 1
                    latency, deep = self._load_latency(entry.inst.addr)
                    self.activity.lsq_issues += 1
                    if deep:
                        entry.deep_load = True
                        self._mem_outstanding += 1
            elif op is OpClass.STORE:
                # Address generation only; data is written at commit.
                latency = 1
                self.activity.lsq_issues += 1
            else:
                maybe = self.funits.try_issue(op, self.cycle)
                if maybe is None:
                    leftovers.append(entry)
                    continue
                latency = maybe
                self._count_fu(op)
            entry.issued = True
            issued += 1
            self.activity.regfile_reads += 2
            self.stats.issued += 1
            when = self.cycle + latency
            self._completions.setdefault(when, []).append(entry)
        self._ready = leftovers

    def _count_fu(self, op: OpClass) -> None:
        if op in (OpClass.IALU, OpClass.BRANCH, OpClass.NOP):
            self.activity.issued_ialu += 1
        elif op in (OpClass.IMULT, OpClass.IDIV):
            self.activity.issued_imult += 1
        elif op is OpClass.FPALU:
            self.activity.issued_fpalu += 1
        else:
            self.activity.issued_fpmult += 1

    def _load_latency(self, addr: int) -> tuple[int, bool]:
        before_l1 = self.caches.l1d.misses
        before_l2 = self.caches.l2.misses
        latency, _ = self.caches.access_data(addr)
        self.activity.dcache_accesses += 1
        self.stats.l1d_accesses += 1
        deep = self.caches.l1d.misses != before_l1
        if deep:
            self.stats.l1d_misses += 1
            self.activity.l2_accesses += 1
            self.stats.l2_accesses += 1
            if self.caches.l2.misses != before_l2:
                self.stats.l2_misses += 1
                self.activity.memory_accesses += 1
            if self.config.prefetch_next_line:
                # Sequential prefetcher: start pulling the next line; the
                # extra traffic costs cache energy but no stall.
                if self.caches.prefetch_data(addr):
                    self.activity.dcache_accesses += 1
                    self.activity.l2_accesses += 1
        return latency, deep

    def _dispatch(self) -> None:
        width = self.config.decode_width
        while width and self._fetch_buffer:
            if len(self._ruu) >= self.config.ruu_size:
                break
            inst, mispredicted = self._fetch_buffer[0]
            if inst.is_mem and self._lsq_count >= self.config.lsq_size:
                break
            self._fetch_buffer.popleft()
            entry = _Entry(self._seq, inst, mispredicted)
            self._seq += 1
            for dist in (inst.src1_dist, inst.src2_dist):
                if dist > 0:
                    producer = self._pending.get(entry.seq - dist)
                    if producer is not None and not producer.completed:
                        producer.consumers.append(entry)
                        entry.deps += 1
            self._ruu.append(entry)
            self._pending[entry.seq] = entry
            if inst.is_mem:
                self._lsq_count += 1
                if inst.op is OpClass.STORE:
                    self._pending_stores[inst.addr] = (
                        self._pending_stores.get(inst.addr, 0) + 1
                    )
            if entry.deps == 0:
                self._ready.append(entry)
            self.activity.decoded += 1
            self.activity.dispatched += 1
            self.stats.dispatched += 1
            width -= 1

    def _fetch(self) -> None:
        if (
            self._fetch_blocked
            or self.cycle < self._fetch_stall_until
            or self._stream_done
        ):
            return
        if len(self._fetch_buffer) >= self.config.fetch_queue_size:
            return

        first = self._next_instruction()
        if first is None:
            return
        # One I-cache line access per fetch cycle.
        before_l1 = self.caches.l1i.misses
        before_l2 = self.caches.l2.misses
        latency, _ = self.caches.access_instruction(first.pc)
        self.activity.icache_accesses += 1
        if self.caches.l1i.misses != before_l1:
            self.stats.l1i_misses += 1
            self.activity.l2_accesses += 1
            self.stats.l2_accesses += 1
            if self.caches.l2.misses != before_l2:
                self.stats.l2_misses += 1
                self.activity.memory_accesses += 1
            # The line is being filled; retry the same instruction later.
            self._fetch_stall_until = self.cycle + latency
            self._unfetch(first)
            return

        fetched = 0
        inst: Instruction | None = first
        while inst is not None:
            stop = self._fetch_one(inst)
            fetched += 1
            if (
                stop
                or fetched >= self.config.fetch_width
                or len(self._fetch_buffer) >= self.config.fetch_queue_size
            ):
                break
            inst = self._next_instruction()

    def _fetch_one(self, inst: Instruction) -> bool:
        """Push one instruction into the fetch buffer; True = stop fetching."""
        mispredicted = False
        stop = False
        if inst.is_branch:
            self.activity.bpred_lookups += 1
            self.stats.branches += 1
            correct = self.predictor.update(inst.pc, inst.taken)
            if inst.is_call:
                self.ras.push(inst.pc + 4)
            if inst.is_return:
                correct = correct and self.ras.pop() is not None
            if inst.taken:
                target = self.btb.lookup(inst.pc)
                self.btb.update(inst.pc, inst.addr)
                if correct and target is None and not inst.is_return:
                    # Right direction, unknown target: one-cycle bubble.
                    self._fetch_stall_until = max(
                        self._fetch_stall_until, self.cycle + 2
                    )
                stop = True  # taken branches end the fetch group
            if not correct:
                mispredicted = True
                self.stats.mispredictions += 1
                self._fetch_blocked = True
                stop = True
        self._fetch_buffer.append((inst, mispredicted))
        self.stats.fetched += 1
        return stop

    def _next_instruction(self) -> Instruction | None:
        if self._stream_done:
            return None
        if self._lookahead is not None:
            inst, self._lookahead = self._lookahead, None
            return inst
        try:
            return next(self._stream)
        except StopIteration:
            self._stream_done = True
            return None

    def _unfetch(self, inst: Instruction) -> None:
        """Put an instruction back (I-cache miss before it was consumed)."""
        self._lookahead = inst

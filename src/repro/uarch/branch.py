"""Branch prediction: Table 1's combined predictor, BTB and RAS.

A faithful SimpleScalar-style stack: a 4K-entry bimodal table, a 4K-entry
gshare with 12 bits of global history, a 4K-entry chooser that learns which
component to trust per branch, a 1K-entry 2-way BTB and a 32-entry return
address stack.  Mispredictions cost the paper's 12-cycle penalty (charged
by the pipeline, not here).
"""

from __future__ import annotations

__all__ = [
    "TwoBitCounterTable",
    "BimodalPredictor",
    "GsharePredictor",
    "CombinedPredictor",
    "PredictorHarness",
    "make_predictor",
    "BranchTargetBuffer",
    "ReturnAddressStack",
]


class TwoBitCounterTable:
    """An array of saturating 2-bit counters (the classic building block)."""

    def __init__(self, entries: int, initial: int = 1) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        if not 0 <= initial <= 3:
            raise ValueError("counter values live in [0, 3]")
        self.entries = entries
        self._mask = entries - 1
        self._table = bytearray([initial] * entries)

    def index(self, key: int) -> int:
        """Map an arbitrary key onto a table slot."""
        return key & self._mask

    def predict(self, key: int) -> bool:
        """Taken if the counter's top bit is set."""
        return self._table[key & self._mask] >= 2

    def update(self, key: int, taken: bool) -> None:
        """Saturating increment/decrement toward the outcome."""
        i = key & self._mask
        v = self._table[i]
        if taken:
            if v < 3:
                self._table[i] = v + 1
        elif v > 0:
            self._table[i] = v - 1


class BimodalPredictor:
    """Per-PC 2-bit counters indexed by the branch address.

    Counters initialize weakly taken: most branches are loop branches, and
    real front ends fall back to a taken-biased static prediction.
    """

    def __init__(self, entries: int = 4096) -> None:
        self._table = TwoBitCounterTable(entries, initial=2)

    def _key(self, pc: int) -> int:
        return pc >> 2

    def predict(self, pc: int) -> bool:
        """Direction guess for the branch at ``pc``."""
        return self._table.predict(self._key(pc))

    def update(self, pc: int, taken: bool) -> None:
        """Train on the resolved outcome."""
        self._table.update(self._key(pc), taken)


class GsharePredictor:
    """Global-history predictor: counters indexed by ``pc XOR history``."""

    def __init__(self, entries: int = 4096, history_bits: int = 12) -> None:
        if history_bits <= 0:
            raise ValueError("history_bits must be positive")
        self._table = TwoBitCounterTable(entries, initial=2)
        self._history = 0
        self._history_mask = (1 << history_bits) - 1

    def _key(self, pc: int) -> int:
        return (pc >> 2) ^ self._history

    def predict(self, pc: int) -> bool:
        """Direction guess using current global history."""
        return self._table.predict(self._key(pc))

    def update(self, pc: int, taken: bool) -> None:
        """Train the indexed counter, then shift the outcome into history."""
        self._table.update(self._key(pc), taken)
        self._history = ((self._history << 1) | int(taken)) & self._history_mask


class CombinedPredictor:
    """Table 1's combined predictor: bimodal + gshare with a chooser.

    The chooser is itself a table of 2-bit counters indexed by PC; it is
    trained toward whichever component was right when they disagree.
    """

    def __init__(
        self,
        bimod_entries: int = 4096,
        gshare_entries: int = 4096,
        history_bits: int = 12,
        chooser_entries: int = 4096,
    ) -> None:
        self.bimodal = BimodalPredictor(bimod_entries)
        self.gshare = GsharePredictor(gshare_entries, history_bits)
        # Chooser counter >= 2 means "trust gshare".
        self._chooser = TwoBitCounterTable(chooser_entries)
        self.lookups = 0
        self.mispredictions = 0

    def predict(self, pc: int) -> bool:
        """Direction guess from the currently-favoured component."""
        use_gshare = self._chooser.predict(pc >> 2)
        if use_gshare:
            return self.gshare.predict(pc)
        return self.bimodal.predict(pc)

    def update(self, pc: int, taken: bool) -> bool:
        """Predict-and-train one branch; returns True on a correct guess."""
        p_bim = self.bimodal.predict(pc)
        p_gs = self.gshare.predict(pc)
        prediction = p_gs if self._chooser.predict(pc >> 2) else p_bim
        if p_bim != p_gs:
            # Train the chooser toward the component that was right.
            self._chooser.update(pc >> 2, p_gs == taken)
        self.bimodal.update(pc, taken)
        self.gshare.update(pc, taken)
        self.lookups += 1
        correct = prediction == taken
        if not correct:
            self.mispredictions += 1
        return correct

    @property
    def misprediction_rate(self) -> float:
        """Fraction of lookups that were wrong so far."""
        return self.mispredictions / self.lookups if self.lookups else 0.0


class BranchTargetBuffer:
    """Set-associative BTB (1K entries, 2-way in Table 1), LRU replacement."""

    def __init__(self, entries: int = 1024, ways: int = 2) -> None:
        if entries <= 0 or ways <= 0 or entries % ways:
            raise ValueError("entries must divide evenly into ways")
        self.sets = entries // ways
        if self.sets & (self.sets - 1):
            raise ValueError("set count must be a power of two")
        self.ways = ways
        # Per set: list of (tag, target), most recently used first.
        self._sets: list[list[tuple[int, int]]] = [[] for _ in range(self.sets)]
        self.hits = 0
        self.misses = 0

    def _locate(self, pc: int) -> tuple[int, int]:
        idx = (pc >> 2) & (self.sets - 1)
        tag = pc >> 2
        return idx, tag

    def lookup(self, pc: int) -> int | None:
        """Predicted target for the branch at ``pc`` (None = BTB miss)."""
        idx, tag = self._locate(pc)
        entries = self._sets[idx]
        for pos, (t, target) in enumerate(entries):
            if t == tag:
                entries.insert(0, entries.pop(pos))
                self.hits += 1
                return target
        self.misses += 1
        return None

    def update(self, pc: int, target: int) -> None:
        """Install/refresh the resolved target."""
        idx, tag = self._locate(pc)
        entries = self._sets[idx]
        for pos, (t, _) in enumerate(entries):
            if t == tag:
                entries.pop(pos)
                break
        entries.insert(0, (tag, target))
        del entries[self.ways :]


class ReturnAddressStack:
    """Fixed-depth RAS (32 entries in Table 1); overflows wrap around."""

    def __init__(self, entries: int = 32) -> None:
        if entries <= 0:
            raise ValueError("entries must be positive")
        self.entries = entries
        self._stack: list[int] = []

    def push(self, return_pc: int) -> None:
        """Record a call's return address."""
        self._stack.append(return_pc)
        if len(self._stack) > self.entries:
            self._stack.pop(0)

    def pop(self) -> int | None:
        """Predict a return's target (None when empty)."""
        return self._stack.pop() if self._stack else None

    def __len__(self) -> int:
        return len(self._stack)


class PredictorHarness:
    """Wraps a bare direction predictor with the accounting interface.

    Gives :class:`BimodalPredictor`/:class:`GsharePredictor` the same
    ``update(pc, taken) -> correct`` contract (plus hit-rate counters)
    that :class:`CombinedPredictor` provides natively, so the pipeline
    can run any of the three — the predictor-choice ablation.
    """

    def __init__(self, predictor) -> None:
        self.predictor = predictor
        self.lookups = 0
        self.mispredictions = 0

    def predict(self, pc: int) -> bool:
        """Direction guess (no training)."""
        return self.predictor.predict(pc)

    def update(self, pc: int, taken: bool) -> bool:
        """Predict-and-train one branch; returns True on a correct guess."""
        correct = self.predictor.predict(pc) == taken
        self.predictor.update(pc, taken)
        self.lookups += 1
        if not correct:
            self.mispredictions += 1
        return correct

    @property
    def misprediction_rate(self) -> float:
        """Fraction of lookups that were wrong so far."""
        return self.mispredictions / self.lookups if self.lookups else 0.0


def make_predictor(config) -> "CombinedPredictor | PredictorHarness":
    """Build the configured branch predictor (Table 1: ``combined``)."""
    kind = getattr(config, "predictor_kind", "combined")
    if kind == "combined":
        return CombinedPredictor(
            config.bimod_entries,
            config.gshare_entries,
            config.gshare_history,
            config.chooser_entries,
        )
    if kind == "bimodal":
        return PredictorHarness(BimodalPredictor(config.bimod_entries))
    if kind == "gshare":
        return PredictorHarness(
            GsharePredictor(config.gshare_entries, config.gshare_history)
        )
    raise ValueError(f"unknown predictor kind {kind!r}")

"""Microarchitecture substrate: the Wattch/SimpleScalar-style simulator.

Table-1 configuration, branch predictors, cache hierarchy, functional
units, the out-of-order pipeline, the activity-based power model, and the
top-level simulation driver that turns a workload into a per-cycle current
trace.
"""

from .branch import (
    BimodalPredictor,
    BranchTargetBuffer,
    CombinedPredictor,
    GsharePredictor,
    PredictorHarness,
    ReturnAddressStack,
    TwoBitCounterTable,
    make_predictor,
)
from .caches import Cache, CacheHierarchy, ServiceLevel
from .config import TABLE_1, CacheConfig, ProcessorConfig
from .events import RunStatistics
from .funits import FunctionalUnitPool, FunctionalUnits
from .isa import Instruction, OpClass
from .pipeline import Pipeline
from .power_model import (
    ActivityCounters,
    ClockGating,
    UnitPower,
    WattchPowerModel,
)
from .simulator import (
    DidtController,
    SimulationResult,
    Simulator,
    simulate_benchmark,
)
from .traceio import (
    import_current_trace,
    load_result,
    sanitize_current,
    save_result,
)

__all__ = [
    "ActivityCounters",
    "BimodalPredictor",
    "BranchTargetBuffer",
    "Cache",
    "CacheConfig",
    "CacheHierarchy",
    "ClockGating",
    "CombinedPredictor",
    "DidtController",
    "FunctionalUnitPool",
    "FunctionalUnits",
    "GsharePredictor",
    "Instruction",
    "OpClass",
    "Pipeline",
    "PredictorHarness",
    "ProcessorConfig",
    "ReturnAddressStack",
    "RunStatistics",
    "ServiceLevel",
    "SimulationResult",
    "Simulator",
    "TABLE_1",
    "TwoBitCounterTable",
    "UnitPower",
    "WattchPowerModel",
    "import_current_trace",
    "load_result",
    "make_predictor",
    "sanitize_current",
    "save_result",
    "simulate_benchmark",
]
